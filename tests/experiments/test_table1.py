"""Tests for the Table 1 (mobile measurement) reproduction.

The full-length run is benchmarked in benchmarks/; here we use shorter
horizons that still capture the qualitative structure.
"""

import pytest

from repro.experiments import table1

# Shorter-but-representative settings: long enough to cover at least one
# full phase period of the slowest oscillator (ammp: ~420 s stretched).
DURATION = 470.0
DT = 20e-3


@pytest.fixture(scope="module")
def rows():
    return table1.compute(duration_s=DURATION, dt=DT)


class TestStructure:
    def test_all_twelve_benchmarks(self, rows):
        names = [r.benchmark for r in rows]
        assert set(names) == set(table1.PAPER_STABLE) | set(table1.PAPER_RANGES)

    def test_stable_vs_oscillating_split(self, rows):
        stable = {r.benchmark for r in rows if r.stable}
        osc = {r.benchmark for r in rows if not r.stable}
        assert stable == set(table1.PAPER_STABLE)
        assert osc == set(table1.PAPER_RANGES)

    def test_row_payloads(self, rows):
        for r in rows:
            if r.stable:
                assert r.steady_c is not None and r.range_c is None
            else:
                assert r.range_c is not None and r.steady_c is None
                lo, hi = r.range_c
                assert lo <= hi


class TestQualitativeShape:
    def test_mcf_is_coolest(self, rows):
        temps = {r.benchmark: r.steady_c for r in rows if r.stable}
        assert temps["mcf"] == min(temps.values())

    def test_gzip_and_sixtrack_hottest_stable(self, rows):
        temps = {r.benchmark: r.steady_c for r in rows if r.stable}
        top_two = sorted(temps, key=temps.get, reverse=True)[:2]
        assert set(top_two) == {"gzip", "sixtrack"}

    def test_temperatures_in_measured_band(self, rows):
        """All readings within a few degrees of the paper's 59-72 span."""
        for r in rows:
            values = [r.steady_c] if r.stable else list(r.range_c)
            for v in values:
                assert 52 <= v <= 80, (r.benchmark, v)

    def test_oscillators_swing_multiple_degrees(self, rows):
        for r in rows:
            if not r.stable:
                lo, hi = r.range_c
                assert hi - lo >= 2, r.benchmark

    def test_steady_benchmarks_really_steady(self):
        readings = table1._simulate_benchmark(
            "gzip", DURATION, DT, table1.MOBILE_PACKAGE,
            table1.MOBILE_POWER_SCALE, seed=1,
        )
        settle = readings[len(readings) // 3:]
        assert settle.max() - settle.min() <= 3.0


class TestProtocol:
    def test_quantised_to_whole_degrees(self):
        readings = table1._simulate_benchmark(
            "parser", 50.0, DT, table1.MOBILE_PACKAGE,
            table1.MOBILE_POWER_SCALE, seed=0,
        )
        assert (readings == readings.round()).all()

    def test_render_has_both_subtables(self, rows):
        text = table1.render(rows)
        assert "Table 1a" in text
        assert "Table 1b" in text

    def test_subset_computation(self):
        rows = table1.compute(
            duration_s=50.0, dt=DT, benchmarks=["gzip", "mcf"]
        )
        assert [r.benchmark for r in rows] == ["gzip", "mcf"]
