"""Golden-file regression tests against the checked-in ``results/``.

These pin the paper-facing summary numbers of Table 1 and Figure 3 to
the values committed in ``results/table1.txt`` and ``results/figure3.txt``
(both produced at the paper's default configuration), so performance
work — the parallel runner, cache layers, future vectorisation — cannot
silently drift the reproduction.

The runs are deterministic, so current code reproduces the files
exactly; the tolerances (±2 C, ±0.05 relative throughput) only leave
room for intentional, reviewed model changes, at which point the golden
files should be regenerated alongside.

Full-fidelity runs at the default horizon are slow (~2 s per
simulation), so by default each table is spot-checked on a
representative subset; set ``REPRO_GOLDEN_FULL=1`` to verify every row.
The batch executes through a ``jobs=2`` :class:`ParallelRunner`, which
doubles as an end-to-end check that the parallel path reproduces the
serially-generated golden numbers.
"""

import os
import re
from pathlib import Path

import pytest

from repro.experiments import figure3, table1
from repro.experiments.common import clear_result_cache, set_default_runner
from repro.sim.runner import ParallelRunner
from repro.sim.workloads import get_workload

RESULTS_DIR = Path(__file__).resolve().parents[2] / "results"

FULL = os.environ.get("REPRO_GOLDEN_FULL", "") not in ("", "0")

#: Subset rows checked by default (one oscillating benchmark included).
TABLE1_SUBSET = ("gzip", "mcf", "bzip2")
FIGURE3_SUBSET = ("workload1", "workload7")

TEMP_TOL_C = 2
RELATIVE_TOL = 0.05


@pytest.fixture(autouse=True)
def parallel_default_runner():
    """Route the experiment drivers through a 2-worker runner."""
    clear_result_cache()
    old = set_default_runner(ParallelRunner(jobs=2))
    yield
    set_default_runner(old)
    clear_result_cache()


# -- golden-file parsers ------------------------------------------------------


def parse_table1_golden():
    """``results/table1.txt`` -> ({benchmark: steady_c}, {benchmark: (lo, hi)})."""
    text = (RESULTS_DIR / "table1.txt").read_text()
    steady, ranges = {}, {}
    for line in text.splitlines():
        m = re.match(r"(\w+)\s+\| SPEC\w+\s+\| (\d+)-(\d+)\s*$", line)
        if m:
            ranges[m.group(1)] = (int(m.group(2)), int(m.group(3)))
            continue
        m = re.match(r"(\w+)\s+\| SPEC\w+\s+\| (\d+)\s*$", line)
        if m:
            steady[m.group(1)] = int(m.group(2))
    return steady, ranges


def parse_figure3_golden():
    """``results/figure3.txt`` -> {workload_name: (stopgo, gdvfs, ddvfs)}."""
    text = (RESULTS_DIR / "figure3.txt").read_text()
    out = {}
    order = [get_workload(f"workload{i}") for i in range(1, 13)]
    by_label = {w.label: w.name for w in order}
    for line in text.splitlines():
        parts = [p.strip() for p in line.split("|")]
        if len(parts) == 4 and parts[0] in by_label:
            out[by_label[parts[0]]] = tuple(float(p) for p in parts[1:])
    return out


def test_golden_files_parse():
    steady, ranges = parse_table1_golden()
    assert len(steady) == 8 and len(ranges) == 4
    bars = parse_figure3_golden()
    assert len(bars) == 12


# -- regressions --------------------------------------------------------------


def test_table1_matches_golden():
    steady_golden, ranges_golden = parse_table1_golden()
    names = (
        list(steady_golden) + list(ranges_golden) if FULL else list(TABLE1_SUBSET)
    )
    rows = {r.benchmark: r for r in table1.compute(benchmarks=names)}
    assert set(rows) == set(names)
    for name in names:
        row = rows[name]
        if name in steady_golden:
            assert row.stable, name
            assert abs(row.steady_c - steady_golden[name]) <= TEMP_TOL_C, (
                f"{name}: steady {row.steady_c} C drifted from golden "
                f"{steady_golden[name]} C"
            )
        else:
            assert not row.stable, name
            lo, hi = row.range_c
            glo, ghi = ranges_golden[name]
            assert abs(lo - glo) <= TEMP_TOL_C and abs(hi - ghi) <= TEMP_TOL_C, (
                f"{name}: range {lo}-{hi} C drifted from golden {glo}-{ghi} C"
            )


def test_figure3_matches_golden():
    golden = parse_figure3_golden()
    names = sorted(golden) if FULL else list(FIGURE3_SUBSET)
    workloads = [get_workload(n) for n in names]
    rows = {r.workload: r for r in figure3.compute(workloads=workloads)}
    for name in names:
        computed = (
            rows[name].relative["global-stop-go-none"],
            rows[name].relative["global-dvfs-none"],
            rows[name].relative["distributed-dvfs-none"],
        )
        for got, want, series in zip(
            computed, golden[name], ("global stop-go", "global DVFS", "dist. DVFS")
        ):
            assert got == pytest.approx(want, abs=RELATIVE_TOL), (
                f"{name} {series}: {got:.3f} drifted from golden {want:.2f}"
            )
