"""Tests for the table/figure experiment modules.

These run at a short horizon over a workload subset — enough to verify
the modules' mechanics and coarse orderings; the full-horizon paper
comparison lives in benchmarks/ and EXPERIMENTS.md, with the shape pins
in tests/test_calibration.py.
"""

import pytest

from repro.experiments import figure3, figure5, figure7, table5, table6, table7, table8
from repro.experiments.common import default_config
from repro.sim.workloads import get_workload

CFG = default_config(duration_s=0.04)
# Subset spanning hot-int, mixed, cool and all-fp workloads.
WORKLOADS = [get_workload(n) for n in ("workload3", "workload7", "workload10")]


@pytest.fixture(scope="module")
def t5_rows():
    return table5.compute(CFG, WORKLOADS)


class TestTable5:
    def test_four_rows_in_order(self, t5_rows):
        keys = [r.spec_key for r in t5_rows]
        assert keys == [s.key for s in table5.TABLE5_SPECS]

    def test_baseline_normalised(self, t5_rows):
        by_key = {r.spec_key: r for r in t5_rows}
        assert by_key["distributed-stop-go-none"].relative_throughput == pytest.approx(1.0)

    def test_orderings(self, t5_rows):
        by_key = {r.spec_key: r.relative_throughput for r in t5_rows}
        assert by_key["global-stop-go-none"] < 1.0
        assert by_key["global-dvfs-none"] > 1.0
        assert by_key["distributed-dvfs-none"] >= by_key["global-dvfs-none"]

    def test_duty_cycle_orderings(self, t5_rows):
        by_key = {r.spec_key: r.duty_cycle for r in t5_rows}
        assert by_key["distributed-dvfs-none"] > by_key["distributed-stop-go-none"]

    def test_render(self, t5_rows):
        text = table5.render(t5_rows)
        assert "Table 5" in text
        assert "Dist. DVFS" in text


class TestFigure3:
    def test_rows_per_workload(self):
        rows = figure3.compute(CFG, WORKLOADS)
        assert [r.workload for r in rows] == [w.name for w in WORKLOADS]
        for r in rows:
            assert set(r.relative) == set(figure3.FIGURE3_KEYS)

    def test_dist_dvfs_wins_everywhere(self):
        rows = figure3.compute(CFG, WORKLOADS)
        for r in rows:
            assert r.relative["distributed-dvfs-none"] >= r.relative[
                "global-stop-go-none"
            ]

    def test_render(self):
        text = figure3.render(figure3.compute(CFG, WORKLOADS))
        assert "Figure 3" in text


class TestTable6And7:
    def test_table6_rows(self):
        rows = table6.compute(CFG, WORKLOADS)
        assert len(rows) == 4
        for r in rows:
            assert "migration" in r.policy_name
            assert r.speedup_over_base > 0

    def test_stopgo_migration_speedup_exceeds_dvfs_migration_speedup(self):
        """Migration rescues stop-go far more than it helps DVFS."""
        rows = {r.spec_key: r for r in table6.compute(CFG, WORKLOADS)}
        assert (
            rows["distributed-stop-go-counter"].speedup_over_base
            > rows["distributed-dvfs-counter"].speedup_over_base
        )

    def test_table7_references_counter(self):
        rows = table7.compute(CFG, WORKLOADS)
        assert len(rows) == 4
        for r in rows:
            assert 0.5 < r.speedup_over_counter < 2.0

    def test_renders(self):
        assert "Table 6" in table6.render(table6.compute(CFG, WORKLOADS))
        assert "Table 7" in table7.render(table7.compute(CFG, WORKLOADS))


class TestFigure7:
    def test_deltas_are_small_percentages(self):
        rows = figure7.compute(CFG, WORKLOADS)
        for r in rows:
            assert -15.0 < r.counter_delta_pct < 20.0
            assert -15.0 < r.sensor_delta_pct < 20.0

    def test_render(self):
        assert "Figure 7" in figure7.render(figure7.compute(CFG, WORKLOADS))


class TestTable8:
    @pytest.fixture(scope="class")
    def grid(self):
        return table8.compute(CFG, WORKLOADS)

    def test_all_twelve_cells(self, grid):
        assert len(grid.relative) == 12

    def test_baseline_cell_is_one(self, grid):
        assert grid.relative["distributed-stop-go-none"] == pytest.approx(1.0)

    def test_best_policy_is_dvfs_family(self, grid):
        assert "dvfs" in grid.best_key

    def test_render_contains_baseline_marker(self, grid):
        assert "baseline" in table8.render(grid)


class TestFigure5:
    def test_window_extraction(self):
        data = figure5.compute(default_config(duration_s=0.05))
        assert len(data.times_ms) == len(data.intreg_temp_c)
        assert len(data.resident_benchmark) == len(data.times_ms)
        assert 0 <= data.core < 4
        # Residency changes occurred within the window.
        assert len(data.resident_sequence) >= 2

    def test_scales_physical(self):
        data = figure5.compute(default_config(duration_s=0.05))
        assert data.frequency_scale.min() >= 0.0
        assert data.frequency_scale.max() <= 1.0

    def test_render(self):
        data = figure5.compute(default_config(duration_s=0.05))
        text = figure5.render(data, n_rows=8)
        assert "Figure 5" in text
        assert "->" in text
