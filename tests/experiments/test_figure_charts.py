"""Tests for the terminal-chart layer in the figure renders."""


from repro.experiments import figure3, figure5, figure7
from repro.experiments.common import default_config
from repro.sim.workloads import get_workload

CFG = default_config(duration_s=0.02)
WORKLOADS = [get_workload(n) for n in ("workload1", "workload7")]


class TestFigure3Chart:
    def test_bar_chart_appended(self):
        text = figure3.render(figure3.compute(CFG, WORKLOADS))
        assert "Dist. DVFS vs baseline" in text
        assert "┤" in text
        assert "│" in text or "█" * 5 in text  # baseline marker or full bar

    def test_one_bar_per_workload(self):
        text = figure3.render(figure3.compute(CFG, WORKLOADS))
        chart_lines = [line for line in text.splitlines() if "┤" in line]
        assert len(chart_lines) == len(WORKLOADS)


class TestFigure7Chart:
    def test_zero_marker_present(self):
        text = figure7.render(figure7.compute(CFG, WORKLOADS))
        assert "marks zero" in text


class TestFigure5Sketch:
    def test_multiseries_block(self):
        data = figure5.compute(CFG)
        text = figure5.render(data, n_rows=6)
        assert "int reg (C)" in text
        assert "freq scale" in text
        assert "ms" in text.splitlines()[-1]
        # Range annotations for each series.
        assert text.count("[") >= 3
