"""Tests for the asymmetric-cores extension."""

import pytest

from repro.experiments import extensions
from repro.experiments.common import default_config
from repro.sim.engine import SimulationConfig
from repro.thermal.layouts import build_cmp_floorplan

CFG = default_config(duration_s=0.06)


class TestAsymmetricFloorplan:
    def test_sizes_respected(self):
        fp = build_cmp_floorplan(4, core_sizes_mm=(5.0, 5.0, 2.65, 2.65))
        big = fp.block("core0.intreg").area_mm2
        small = fp.block("core2.intreg").area_mm2
        assert big == pytest.approx(small * (5.0 / 2.65) ** 2)

    def test_l2_banks_track_core_columns(self):
        fp = build_cmp_floorplan(4, core_sizes_mm=(5.0, 5.0, 2.65, 2.65))
        assert fp.block("l2_0").width == pytest.approx(5.0)
        assert fp.block("l2_3").width == pytest.approx(2.65)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_cmp_floorplan(4, core_sizes_mm=(5.0, 5.0))
        with pytest.raises(ValueError):
            build_cmp_floorplan(2, core_sizes_mm=(4.0, -1.0))


class TestEngineSupport:
    def test_config_carries_core_sizes(self):
        cfg = SimulationConfig(duration_s=0.01, core_sizes_mm=(5.0, 5.0, 2.65, 2.65))
        from repro.sim.engine import ThermalTimingSimulator

        sim = ThermalTimingSimulator(("gzip", "sixtrack", "mcf", "swim"), None, cfg)
        assert sim.floorplan.block("core0.fpu").area_mm2 > sim.floorplan.block(
            "core2.fpu"
        ).area_mm2


class TestStudies:
    def test_placement_rows(self):
        rows = extensions.placement_sensitivity(CFG)
        assert len(rows) == 4
        by_label = {r.label: r for r in rows}
        # A hot thread on a small core runs hotter/slower than on a big one.
        assert (
            by_label["asymmetric, hot on BIG cores"].bips
            >= by_label["asymmetric, hot on SMALL cores"].bips
        )

    def test_migration_recovery_rows(self):
        rows = extensions.asymmetric_migration_study(CFG)
        assert [r.label for r in rows] == [
            "no migration",
            "counter-based migration",
            "sensor-based migration",
        ]
        assert rows[2].migrations >= 0

    def test_render(self):
        rows = extensions.asymmetric_migration_study(CFG)
        text = extensions.render(rows, "Extension: demo")
        assert "Extension: demo" in text
        assert "sensor-based migration" in text


class TestSmtStudy:
    def test_three_configurations(self):
        rows = extensions.smt_study(CFG)
        labels = [r.label for r in rows]
        assert labels[0].startswith("CMP-4")
        assert any("complementary" in l for l in labels)
        assert any("aligned" in l for l in labels)

    def test_all_configurations_safe_and_productive(self):
        for r in extensions.smt_study(CFG):
            assert r.bips > 0
            assert r.max_temp_c < 85.0

    def test_cmp_beats_smt_at_equal_area(self):
        """The literature's thermal finding (Donald & Martonosi [9],
        Li et al.): under a thermal limit and equal area, one thread per
        smaller core outperforms merged pairs on bigger SMT cores."""
        rows = {r.label: r for r in extensions.smt_study(CFG)}
        cmp4 = rows["CMP-4: one thread per core"].bips
        smt = max(
            r.bips for label, r in rows.items() if label.startswith("SMT-2")
        )
        assert cmp4 > smt
