"""Tests for the PI-DVFS policy and the actuator."""

import pytest

from repro.core.dvfs import DVFSActuator, DVFSPolicy

DT = 100_000 / 3.6e9


def readings(*temps):
    return [{"intreg": t, "fpreg": t - 5.0} for t in temps]


class TestDistributedDVFS:
    def test_cool_cores_full_speed(self):
        p = DVFSPolicy(4, dt=DT)
        scales = p.scales(0.0, readings(60, 60, 60, 60))
        assert scales == [1.0] * 4

    def test_hot_core_throttles_independently(self):
        p = DVFSPolicy(4, dt=DT)
        for k in range(500):
            scales = p.scales(k * DT, readings(95, 60, 60, 60))
        assert scales[0] < 1.0
        assert scales[1] == 1.0

    def test_hottest_sensor_governs(self):
        """The controller "selects the hottest of the input temperatures"."""
        p = DVFSPolicy(1, dt=DT)
        for k in range(500):
            hot_fp = p.scales(k * DT, [{"intreg": 60.0, "fpreg": 95.0}])
        assert hot_fp[0] < 1.0

    def test_output_floor(self):
        p = DVFSPolicy(1, dt=DT)
        for k in range(20_000):
            scales = p.scales(k * DT, readings(130))
        assert scales[0] == pytest.approx(0.2)

    def test_setpoint_below_threshold(self):
        p = DVFSPolicy(1, dt=DT, threshold_c=84.2, setpoint_margin_c=2.0)
        assert p.setpoint_c == pytest.approx(82.2)


class TestGlobalDVFS:
    def test_single_controller(self):
        p = DVFSPolicy(4, dt=DT, scope="global")
        assert len(p.controllers) == 1

    def test_one_hot_core_slows_everyone(self):
        p = DVFSPolicy(4, dt=DT, scope="global")
        for k in range(500):
            scales = p.scales(k * DT, readings(95, 60, 60, 60))
        assert len(set(scales)) == 1
        assert scales[0] < 1.0

    def test_controller_for_maps_all_cores(self):
        p = DVFSPolicy(4, dt=DT, scope="global")
        assert p.controller_for(0) is p.controller_for(3)


class TestFeedback:
    def test_average_scale_window(self):
        p = DVFSPolicy(1, dt=DT)
        for k in range(300):
            p.scales(k * DT, readings(95))
        assert p.average_scale(0) < 1.0
        saturated = p.average_scale(0)
        p.reset_window(0)
        # Recovery is not instant (incremental PI), but a handful of cool
        # samples lifts the fresh window well above the saturated average.
        for k in range(20):
            p.scales((301 + k) * DT, readings(60))
        assert p.average_scale(0) > max(0.8, saturated)

    def test_on_migration_resets_window_not_output(self):
        p = DVFSPolicy(2, dt=DT)
        for k in range(1000):
            p.scales(k * DT, readings(95, 60))
        before = p.controller_for(0).output
        p.on_migration([0], 1000 * DT)
        assert p.controller_for(0).output == before  # output survives
        assert p.average_scale(0) == pytest.approx(before)  # fresh window


class TestValidation:
    def test_bad_scope(self):
        with pytest.raises(ValueError):
            DVFSPolicy(4, dt=DT, scope="per-cluster")

    def test_bad_margin(self):
        with pytest.raises(ValueError):
            DVFSPolicy(4, dt=DT, setpoint_margin_c=-1.0)


class TestActuator:
    def test_small_change_ignored(self):
        """Changes below 2% of the range don't re-lock the PLL."""
        a = DVFSActuator()
        assert a.request(0.995) == 0.0
        assert a.current_scale == 1.0
        assert a.transitions == 0

    def test_large_change_penalised(self):
        a = DVFSActuator()
        penalty = a.request(0.8)
        assert penalty == pytest.approx(10e-6)
        assert a.current_scale == 0.8
        assert a.transitions == 1

    def test_threshold_is_fraction_of_range(self):
        # 2% of the [0.2, 1.0] range = 0.016.
        a = DVFSActuator()
        assert a.request(1.0 - 0.015) == 0.0
        assert a.request(1.0 - 0.017) > 0.0

    def test_repeat_request_free(self):
        a = DVFSActuator()
        a.request(0.7)
        assert a.request(0.7) == 0.0

    def test_rejects_zero_scale(self):
        with pytest.raises(ValueError):
            DVFSActuator().request(0.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DVFSActuator(transition_penalty_s=-1.0)
        with pytest.raises(ValueError):
            DVFSActuator(min_transition=1.0)
