"""Tests for the throttle-policy base class contract."""

import pytest

from repro.core.policy import DEFAULT_THRESHOLD_C, ThrottlePolicy


class _Constant(ThrottlePolicy):
    """Minimal concrete policy for exercising the base class."""

    kind = "test"

    def scales(self, time_s, readings):
        self._check_readings(readings)
        return [1.0] * self.n_cores


class TestBaseClass:
    def test_default_threshold_is_papers(self):
        assert DEFAULT_THRESHOLD_C == pytest.approx(84.2)

    def test_core_count_validation(self):
        with pytest.raises(ValueError):
            _Constant(0)

    def test_reading_width_checked(self):
        policy = _Constant(4)
        with pytest.raises(ValueError, match="expected readings"):
            policy.scales(0.0, [{"intreg": 50.0}] * 3)

    def test_hottest_helper(self):
        assert ThrottlePolicy.hottest({"intreg": 80.0, "fpreg": 82.5}) == 82.5
        with pytest.raises(ValueError):
            ThrottlePolicy.hottest({})

    def test_default_feedback_surface(self):
        """Policies that don't override the feedback hooks behave sanely:
        full-speed average, no-op resets and migration notifications."""
        policy = _Constant(2)
        assert policy.average_scale(0) == 1.0
        policy.reset_window(1)
        policy.on_migration([0, 1], 0.5)  # must not raise

    def test_custom_threshold_stored(self):
        assert _Constant(2, threshold_c=100.0).threshold_c == 100.0
