"""Tests for the migration framework and the Figure 4 algorithm."""

import pytest

from repro.core.migration import (
    MigrationContext,
    MigrationPolicy,
    critical_unit,
    figure4_assignment,
    hotspot_imbalance,
)
from repro.osmodel.process import Process
from repro.osmodel.scheduler import Scheduler
from repro.uarch.tracegen import generate_trace

NAMES = ("gzip", "twolf", "ammp", "lucas")


def make_scheduler():
    processes = [
        Process(pid=i, benchmark=n, trace=generate_trace(n, duration_s=0.005))
        for i, n in enumerate(NAMES)
    ]
    return Scheduler(processes, n_cores=4)


def make_readings(int_temps, fp_temps):
    return [
        {"intreg": i, "fpreg": f} for i, f in zip(int_temps, fp_temps)
    ]


class TestHelpers:
    def test_hotspot_imbalance(self):
        assert hotspot_imbalance({"intreg": 84.0, "fpreg": 78.0}) == pytest.approx(6.0)
        assert hotspot_imbalance({"intreg": 70.0}) == 0.0
        with pytest.raises(ValueError):
            hotspot_imbalance({})

    def test_critical_unit(self):
        assert critical_unit({"intreg": 84.0, "fpreg": 78.0}) == "intreg"
        assert critical_unit({"intreg": 70.0, "fpreg": 78.0}) == "fpreg"


class TestFigure4:
    def test_complementary_swap(self):
        """An int-hot core receives the least int-intense thread."""
        current = [0, 1]  # pid 0 = int-hog on core 0, pid 1 = fp-hog on core 1
        readings = [
            {"intreg": 84.0, "fpreg": 70.0},
            {"intreg": 70.0, "fpreg": 84.0},
        ]
        intensity_map = {
            (0, "intreg"): 5.0, (0, "fpreg"): 0.1,
            (1, "intreg"): 0.5, (1, "fpreg"): 3.0,
        }

        def intensity(pid, core, unit):
            return intensity_map[(pid, unit)]

        assignment = figure4_assignment(current, readings, intensity)
        assert assignment == [1, 0]  # swapped

    def test_self_assignment_when_already_optimal(self):
        """"the best candidate for a thread to migrate will be itself"."""
        current = [0, 1]
        readings = [
            {"intreg": 84.0, "fpreg": 70.0},
            {"intreg": 70.0, "fpreg": 84.0},
        ]
        intensity_map = {
            (0, "intreg"): 0.1, (0, "fpreg"): 5.0,
            (1, "intreg"): 5.0, (1, "fpreg"): 0.1,
        }

        def intensity(pid, core, unit):
            return intensity_map[(pid, unit)]

        assert figure4_assignment(current, readings, intensity) == [0, 1]

    def test_most_imbalanced_core_chooses_first(self):
        current = [0, 1, 2, 3]
        # Core 2 has the largest imbalance -> gets the global minimum.
        readings = make_readings(
            [80.0, 81.0, 84.0, 79.0], [78.0, 79.0, 70.0, 78.0]
        )
        intensities = {0: 4.0, 1: 3.0, 2: 2.0, 3: 1.0}

        def intensity(pid, core, unit):
            return intensities[pid]

        assignment = figure4_assignment(current, readings, intensity)
        assert assignment[2] == 3  # least intense thread lands on core 2

    def test_result_is_permutation(self):
        current = [0, 1, 2, 3]
        readings = make_readings([80, 81, 82, 83], [79, 80, 81, 82])

        def intensity(pid, core, unit):
            return (pid * 7 + core) % 5

        assignment = figure4_assignment(current, readings, intensity)
        assert sorted(assignment) == [0, 1, 2, 3]

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            figure4_assignment([0, 1], [{"intreg": 80.0}], lambda p, c, u: 0.0)


class _FixedPolicy(MigrationPolicy):
    """Test double returning a canned proposal."""

    kind = "fixed"

    def __init__(self, proposal, min_interval_s=10e-3):
        super().__init__(min_interval_s)
        self._proposal = proposal

    def propose(self, ctx):
        return self._proposal


class TestDecideRateLimiting:
    def _ctx(self, t, scheduler):
        return MigrationContext(
            time_s=t,
            scheduler=scheduler,
            readings=make_readings([80, 80, 80, 80], [75, 75, 75, 75]),
            avg_scales=[1.0] * 4,
        )

    def test_min_interval_enforced(self):
        s = make_scheduler()
        p = _FixedPolicy([1, 0, 2, 3])
        assert p.decide(self._ctx(0.0, s)) is not None
        s.apply_assignment([1, 0, 2, 3], 0.0)
        p._proposal = [0, 1, 2, 3]
        # 5 ms later: ignored.
        assert p.decide(self._ctx(5e-3, s)) is None
        # 10 ms later: allowed.
        assert p.decide(self._ctx(10.1e-3, s)) is not None

    def test_noop_proposal_does_not_consume_budget(self):
        s = make_scheduler()
        p = _FixedPolicy(list(s.assignment))
        assert p.decide(self._ctx(0.0, s)) is None
        # The no-op did not consume the rate budget.
        p._proposal = [1, 0, 2, 3]
        assert p.decide(self._ctx(1e-3, s)) is not None

    def test_none_proposal_handled(self):
        s = make_scheduler()
        p = _FixedPolicy(None)
        assert p.decide(self._ctx(0.0, s)) is None


class TestImprovementGate:
    def _ctx(self, scheduler, urgent):
        # Core 0 int-hot, core 1 fp-hot; cores 2/3 balanced.
        return MigrationContext(
            time_s=0.0,
            scheduler=scheduler,
            readings=make_readings([84, 70, 77, 77], [70, 84, 76.5, 76.5]),
            avg_scales=[1.0] * 4,
            rebalance_urgent=urgent,
        )

    def test_neutral_shuffle_suppressed_when_not_urgent(self):
        s = make_scheduler()

        class Shuffler(MigrationPolicy):
            kind = "shuffle"

            def propose(self, ctx):
                # All threads look identical -> no cost improvement.
                return self.matched_assignment(ctx, lambda p, c, u: 1.0)

        p = Shuffler()
        assert p.decide(self._ctx(s, urgent=False)) is None

    def test_improving_swap_allowed(self):
        s = make_scheduler()
        intensity_map = {
            (0, "intreg"): 5.0, (0, "fpreg"): 0.1,
            (1, "intreg"): 0.5, (1, "fpreg"): 3.0,
            (2, "intreg"): 1.0, (2, "fpreg"): 1.0,
            (3, "intreg"): 1.0, (3, "fpreg"): 1.0,
        }

        class Matcher(MigrationPolicy):
            kind = "m"

            def propose(self, ctx):
                return self.matched_assignment(
                    ctx, lambda p, c, u: intensity_map[(p, u)]
                )

        p = Matcher()
        proposal = p.decide(self._ctx(s, urgent=False))
        assert proposal is not None
        assert proposal[0] == 1  # fp-leaning thread onto the int-hot core

    def test_urgent_round_bypasses_gate(self):
        s = make_scheduler()

        class Shuffler(MigrationPolicy):
            kind = "shuffle"

            def propose(self, ctx):
                return self.matched_assignment(
                    # Tie intensities, but tiny pid-dependent jitter makes
                    # the greedy matching reshuffle.
                    ctx, lambda p, c, u: 1.0 + 0.001 * ((p + c) % 3)
                )

        p = Shuffler()
        result = p.decide(self._ctx(s, urgent=True))
        # Urgent rounds accept whatever the matching proposes (may or may
        # not differ from current; just must not raise).
        assert result is None or sorted(result) == [0, 1, 2, 3]
