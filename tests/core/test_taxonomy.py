"""Tests for the Table 2 taxonomy and policy factory."""

import pytest

from repro.core.counter_migration import CounterBasedMigration
from repro.core.dvfs import DVFSPolicy
from repro.core.sensor_migration import SensorBasedMigration
from repro.core.stopgo import StopGoPolicy
from repro.core.taxonomy import (
    ALL_POLICY_SPECS,
    BASELINE_SPEC,
    MigrationKind,
    PolicySpec,
    Scope,
    ThrottleKind,
    build_policy,
    spec_by_key,
)

DT = 100_000 / 3.6e9


class TestEnumeration:
    def test_twelve_combinations(self):
        """Table 2 forms "12 possible thermal management schemes"."""
        assert len(ALL_POLICY_SPECS) == 12
        assert len({s.key for s in ALL_POLICY_SPECS}) == 12

    def test_axes_cover_product(self):
        throttles = {s.throttle for s in ALL_POLICY_SPECS}
        scopes = {s.scope for s in ALL_POLICY_SPECS}
        migrations = {s.migration for s in ALL_POLICY_SPECS}
        assert throttles == set(ThrottleKind)
        assert scopes == set(Scope)
        assert migrations == set(MigrationKind)

    def test_baseline_is_distributed_stopgo(self):
        assert BASELINE_SPEC.is_baseline
        assert BASELINE_SPEC in ALL_POLICY_SPECS
        non_baseline = [s for s in ALL_POLICY_SPECS if not s.is_baseline]
        assert len(non_baseline) == 11


class TestNaming:
    def test_paper_terminology(self):
        spec = PolicySpec(ThrottleKind.DVFS, Scope.DISTRIBUTED, MigrationKind.SENSOR)
        assert spec.name == "Dist. DVFS + sensor-based migration"
        spec2 = PolicySpec(ThrottleKind.STOP_GO, Scope.GLOBAL, MigrationKind.NONE)
        assert spec2.name == "Global stop-go"

    def test_key_roundtrip(self):
        for spec in ALL_POLICY_SPECS:
            assert spec_by_key(spec.key) == spec

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            spec_by_key("turbo-boost")


class TestFactory:
    @pytest.mark.parametrize("spec", ALL_POLICY_SPECS, ids=lambda s: s.key)
    def test_builds_correct_types(self, spec):
        throttle, migration = build_policy(spec, n_cores=4, dt=DT)
        if spec.throttle is ThrottleKind.STOP_GO:
            assert isinstance(throttle, StopGoPolicy)
        else:
            assert isinstance(throttle, DVFSPolicy)
        assert throttle.scope == spec.scope.value
        if spec.migration is MigrationKind.NONE:
            assert migration is None
        elif spec.migration is MigrationKind.COUNTER:
            assert isinstance(migration, CounterBasedMigration)
        else:
            assert isinstance(migration, SensorBasedMigration)

    def test_threshold_propagates(self):
        throttle, _ = build_policy(BASELINE_SPEC, 4, DT, threshold_c=100.0)
        assert throttle.threshold_c == 100.0
