"""Tests for sensor-based migration (Figure 6 flow)."""

import pytest

from repro.core.migration import MigrationContext
from repro.core.sensor_migration import SensorBasedMigration
from repro.osmodel.process import Process
from repro.osmodel.scheduler import Scheduler
from repro.osmodel.thermal_table import ThreadCoreThermalTable
from repro.uarch.tracegen import generate_trace

NAMES = ("gzip", "twolf", "ammp", "lucas")
UNITS = ("intreg", "fpreg")


def make_scheduler():
    processes = [
        Process(pid=i, benchmark=n, trace=generate_trace(n, duration_s=0.005))
        for i, n in enumerate(NAMES)
    ]
    return Scheduler(processes, n_cores=4)


def full_table(intensities):
    """A table with every thread observed on every core.

    ``intensities``: pid -> (int_intensity, fp_intensity).
    """
    t = ThreadCoreThermalTable(4, UNITS)
    for pid, (i_int, i_fp) in intensities.items():
        for core in range(4):
            t.record(pid, core, "intreg", i_int, 1.0)
            t.record(pid, core, "fpreg", i_fp, 1.0)
    return t


def ctx_for(scheduler, readings, table, urgent=False, t=0.0):
    return MigrationContext(
        time_s=t,
        scheduler=scheduler,
        readings=readings,
        avg_scales=[1.0] * 4,
        thermal_table=table,
        rebalance_urgent=urgent,
    )


BALANCED_READINGS = [
    {"intreg": 84.0, "fpreg": 70.0},
    {"intreg": 70.0, "fpreg": 83.0},
    {"intreg": 78.0, "fpreg": 76.0},
    {"intreg": 76.0, "fpreg": 78.0},
]


class TestProfilingPhase:
    def test_insufficient_table_triggers_profiling_swap(self):
        s = make_scheduler()
        policy = SensorBasedMigration()
        table = ThreadCoreThermalTable(4, UNITS)
        # Only thread 0 on core 0 observed: far from sufficient.
        table.record(0, 0, "intreg", 5.0, 1.0)
        proposal = policy.propose(ctx_for(s, BALANCED_READINGS, table))
        assert proposal is not None
        assert sorted(proposal) == [0, 1, 2, 3]
        assert proposal != list(s.assignment)  # something moved
        assert policy.profiling_moves == 1

    def test_requires_table(self):
        s = make_scheduler()
        policy = SensorBasedMigration()
        with pytest.raises(ValueError, match="thermal table"):
            policy.propose(ctx_for(s, BALANCED_READINGS, table=None))


class TestMatchingPhase:
    def test_complementary_matching_from_table(self):
        s = make_scheduler()
        policy = SensorBasedMigration()
        table = full_table(
            {
                0: (8.0, 0.5),   # gzip: int hog
                1: (4.0, 0.6),   # twolf: milder int
                2: (0.8, 5.0),   # ammp: fp hog
                3: (0.9, 5.5),   # lucas: fp hog
            }
        )
        proposal = policy.propose(
            ctx_for(s, BALANCED_READINGS, table, urgent=True)
        )
        # Core 0 (int-critical, most imbalanced) gets an fp thread.
        assert proposal[0] in (2, 3)
        # Core 1 (fp-critical) gets an int thread.
        assert proposal[1] in (0, 1)

    def test_core_dependent_estimates_used(self):
        """A thread can look cooler on a specific core (edge effects)."""
        s = make_scheduler()
        policy = SensorBasedMigration()
        table = full_table({i: (1.0, 1.0) for i in range(4)})
        # Thread 2 specifically runs cool on core 0's intreg.
        table = ThreadCoreThermalTable(4, UNITS)
        for pid in range(4):
            for core in range(4):
                int_val = 0.2 if (pid == 2 and core == 0) else 2.0 + 0.1 * pid
                table.record(pid, core, "intreg", int_val, 1.0)
                table.record(pid, core, "fpreg", 1.0, 1.0)
        readings = [
            {"intreg": 84.0, "fpreg": 70.0},  # strongly int-critical
            {"intreg": 75.0, "fpreg": 74.0},
            {"intreg": 75.0, "fpreg": 74.0},
            {"intreg": 75.0, "fpreg": 74.0},
        ]
        proposal = policy.propose(ctx_for(s, readings, table, urgent=True))
        assert proposal[0] == 2

    def test_kind_tag(self):
        assert SensorBasedMigration().kind == "sensor"
