"""Tests for counter-based migration."""


from repro.core.counter_migration import CounterBasedMigration
from repro.core.migration import MigrationContext
from repro.osmodel.process import Process
from repro.osmodel.scheduler import Scheduler
from repro.uarch.tracegen import generate_trace

NAMES = ("gzip", "twolf", "ammp", "lucas")  # 2 int-leaning, 2 fp-leaning


def make_scheduler(with_history=True):
    processes = []
    for i, n in enumerate(NAMES):
        trace = generate_trace(n, duration_s=0.01)
        p = Process(pid=i, benchmark=n, trace=trace)
        if with_history:
            # Populate counters from the trace itself (full-speed window).
            p.counters.update(
                instructions=float(trace.instructions.sum()),
                int_rf_accesses=float(trace.int_rf_accesses.sum()),
                fp_rf_accesses=float(trace.fp_rf_accesses.sum()),
                nominal_cycles=float(trace.n_samples * trace.sample_cycles),
                frequency_scale=1.0,
            )
        processes.append(p)
    return Scheduler(processes, n_cores=4)


def ctx_for(scheduler, readings, urgent=False, t=0.0):
    return MigrationContext(
        time_s=t,
        scheduler=scheduler,
        readings=readings,
        avg_scales=[1.0] * 4,
        rebalance_urgent=urgent,
    )


class TestProposal:
    def test_no_history_no_decision(self):
        s = make_scheduler(with_history=False)
        policy = CounterBasedMigration()
        readings = [{"intreg": 84.0, "fpreg": 70.0}] * 4
        assert policy.propose(ctx_for(s, readings)) is None

    def test_int_hot_core_gets_fp_thread(self):
        """gzip sits on an int-hot core; the matcher moves in an
        fp-leaning thread (ammp or lucas) whose int-RF rate is lowest."""
        s = make_scheduler()
        policy = CounterBasedMigration()
        readings = [
            {"intreg": 84.0, "fpreg": 70.0},   # gzip's core: int-critical
            {"intreg": 76.0, "fpreg": 75.0},
            {"intreg": 74.0, "fpreg": 76.0},
            {"intreg": 74.0, "fpreg": 75.0},
        ]
        proposal = policy.propose(ctx_for(s, readings, urgent=True))
        assert proposal is not None
        landed = NAMES[proposal[0]]
        assert landed in ("ammp", "lucas")

    def test_proposal_is_permutation(self):
        s = make_scheduler()
        policy = CounterBasedMigration()
        readings = [
            {"intreg": 84.0, "fpreg": 70.0},
            {"intreg": 70.0, "fpreg": 83.0},
            {"intreg": 80.0, "fpreg": 75.0},
            {"intreg": 75.0, "fpreg": 80.0},
        ]
        proposal = policy.propose(ctx_for(s, readings, urgent=True))
        assert sorted(proposal) == [0, 1, 2, 3]

    def test_decision_counted(self):
        s = make_scheduler()
        policy = CounterBasedMigration()
        readings = [
            {"intreg": 84.0, "fpreg": 70.0},
            {"intreg": 70.0, "fpreg": 83.0},
            {"intreg": 80.0, "fpreg": 75.0},
            {"intreg": 75.0, "fpreg": 80.0},
        ]
        policy.decide(ctx_for(s, readings, urgent=True))
        assert policy.decisions == 1

    def test_kind_tag(self):
        assert CounterBasedMigration().kind == "counter"
