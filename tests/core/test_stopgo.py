"""Tests for the stop-go throttling policy."""

import pytest

from repro.core.stopgo import DEFAULT_FREEZE_S, StopGoPolicy


def readings(*temps):
    """Per-core readings with intreg at the given temp, fpreg cooler."""
    return [{"intreg": t, "fpreg": t - 5.0} for t in temps]


class TestDistributed:
    def test_cool_cores_run(self):
        p = StopGoPolicy(4)
        assert p.scales(0.0, readings(60, 60, 60, 60)) == [1.0] * 4

    def test_hot_core_freezes_alone(self):
        p = StopGoPolicy(4)
        scales = p.scales(0.0, readings(84.1, 60, 60, 60))
        assert scales == [0.0, 1.0, 1.0, 1.0]
        assert p.trip_count == 1

    def test_freeze_lasts_30ms(self):
        p = StopGoPolicy(4)
        p.scales(0.0, readings(84.1, 60, 60, 60))
        # Core stays frozen even after it cools, until 30 ms elapse.
        assert p.scales(0.015, readings(70, 60, 60, 60))[0] == 0.0
        assert p.scales(DEFAULT_FREEZE_S + 1e-6, readings(70, 60, 60, 60))[0] == 1.0

    def test_no_retrigger_while_frozen(self):
        p = StopGoPolicy(4)
        p.scales(0.0, readings(84.1, 60, 60, 60))
        p.scales(0.001, readings(84.1, 60, 60, 60))
        assert p.trip_count == 1

    def test_trip_level_just_below_threshold(self):
        p = StopGoPolicy(1, threshold_c=84.2)
        assert p.trip_temperature_c == pytest.approx(84.0)
        assert p.scales(0.0, readings(83.9)) == [1.0]
        assert p.scales(0.0, readings(84.0)) == [0.0]

    def test_second_sensor_can_trip(self):
        p = StopGoPolicy(1)
        scales = p.scales(0.0, [{"intreg": 60.0, "fpreg": 84.1}])
        assert scales == [0.0]


class TestGlobal:
    def test_one_trip_freezes_all(self):
        p = StopGoPolicy(4, scope="global")
        scales = p.scales(0.0, readings(84.1, 60, 60, 60))
        assert scales == [0.0] * 4

    def test_whole_chip_resumes_together(self):
        p = StopGoPolicy(4, scope="global")
        p.scales(0.0, readings(84.1, 60, 60, 60))
        assert p.scales(DEFAULT_FREEZE_S + 1e-6, readings(60, 60, 60, 60)) == [1.0] * 4


class TestFeedbackWindow:
    def test_duty_fraction_reported(self):
        p = StopGoPolicy(1)
        p.scales(0.0, readings(84.1))  # trips -> frozen
        for k in range(1, 10):
            p.scales(k * 1e-3, readings(70))
        # 10 observations, all frozen.
        assert p.average_scale(0) == pytest.approx(0.0)
        p.reset_window(0)
        p.scales(0.05, readings(70))
        assert p.average_scale(0) == pytest.approx(1.0)

    def test_default_window_is_full_speed(self):
        assert StopGoPolicy(2).average_scale(1) == 1.0


class TestMigrationInteraction:
    def test_migration_cancels_freeze(self):
        """Swapping a new thread onto a frozen core resumes it — the trip
        re-fires if the hotspot is still at the threshold."""
        p = StopGoPolicy(4)
        p.scales(0.0, readings(84.1, 60, 60, 60))
        assert p.is_frozen(0, 0.001)
        p.on_migration([0], 0.001)
        assert not p.is_frozen(0, 0.0011)
        # Still hot -> re-trips immediately on the next evaluation.
        scales = p.scales(0.002, readings(84.1, 60, 60, 60))
        assert scales[0] == 0.0
        assert p.trip_count == 2

    def test_migration_resets_window(self):
        p = StopGoPolicy(2)
        p.scales(0.0, readings(84.1, 60))
        p.on_migration([0], 0.001)
        assert p.average_scale(0) == 1.0  # fresh window


class TestValidation:
    def test_bad_scope(self):
        with pytest.raises(ValueError):
            StopGoPolicy(4, scope="clustered")

    def test_bad_freeze(self):
        with pytest.raises(ValueError):
            StopGoPolicy(4, freeze_s=0.0)

    def test_wrong_reading_count(self):
        p = StopGoPolicy(4)
        with pytest.raises(ValueError):
            p.scales(0.0, readings(60, 60))
