"""Tests for the plain-text table renderer."""

import pytest

from repro.util.tables import render_grid, render_table


def test_basic_alignment():
    text = render_table(["name", "value"], [["a", 1], ["longer", 22]])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    # All content lines have the same column boundary.
    assert lines[0].index("|") == lines[2].index("|") == lines[3].index("|")


def test_title_prepended():
    text = render_table(["a"], [["x"]], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_float_formatting():
    text = render_table(["v"], [[1.23456]])
    assert "1.23" in text
    assert "1.2345" not in text


def test_mismatched_row_rejected():
    with pytest.raises(ValueError, match="cells"):
        render_table(["a", "b"], [["only-one"]])


def test_empty_rows_ok():
    text = render_table(["a", "b"], [])
    assert "a" in text and "b" in text


def test_grid_labels():
    text = render_grid(
        ["r1", "r2"], ["c1", "c2"], [[1, 2], [3, 4]], corner="x", title="G"
    )
    assert "r1" in text and "c2" in text and "G" in text
    # Row labels come first in their lines.
    row_line = [line for line in text.splitlines() if line.startswith("r2")]
    assert row_line and "3" in row_line[0]
