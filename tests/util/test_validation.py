"""Tests for argument-validation helpers."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(3.0, "x") == 3.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, -1e-9])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive(bad, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative(-0.1, "x")


class TestCheckFinite:
    @pytest.mark.parametrize("bad", [float("inf"), float("-inf"), float("nan")])
    def test_rejects_nonfinite(self, bad):
        with pytest.raises(ValueError):
            check_finite(bad, "x")

    def test_accepts_finite(self):
        assert check_finite(1e300, "x") == 1e300


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_open_sided(self):
        assert check_in_range(1e9, "x", low=0.0) == 1e9
        assert check_in_range(-1e9, "x", high=0.0) == -1e9

    def test_violations(self):
        with pytest.raises(ValueError, match=">="):
            check_in_range(-1.0, "x", 0.0, 1.0)
        with pytest.raises(ValueError, match="<="):
            check_in_range(2.0, "x", 0.0, 1.0)


class TestCheckProbability:
    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_accepts_probabilities(self, p):
        assert check_probability(p, "p") == p

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 5.0])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad, "p")
