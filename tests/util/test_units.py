"""Tests for unit conversions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import units


def test_celsius_kelvin_roundtrip():
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(25.0)) == pytest.approx(25.0)


def test_absolute_zero():
    assert units.celsius_to_kelvin(-273.15) == pytest.approx(0.0)


@given(st.floats(min_value=-300, max_value=300, allow_nan=False))
def test_conversion_inverse_property(t):
    assert units.celsius_to_kelvin(units.kelvin_to_celsius(t)) == pytest.approx(t)


def test_area_conversion():
    assert units.mm2_to_m2(1.0) == pytest.approx(1e-6)
    assert units.mm2_to_m2(160.0) == pytest.approx(1.6e-4)


def test_length_conversion():
    assert units.mm_to_m(4.0) == pytest.approx(4e-3)


def test_time_constants():
    assert units.MICROSECOND == pytest.approx(1e-6)
    assert units.MILLISECOND == pytest.approx(1e-3)
    assert units.NANOSECOND == pytest.approx(1e-9)
