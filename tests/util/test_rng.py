"""Tests for deterministic RNG streams."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import DEFAULT_ROOT_SEED, RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_labels_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_no_concatenation_collision(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    @given(st.integers(min_value=0, max_value=2 ** 62), st.text(max_size=30))
    def test_always_in_uint64_range(self, seed, label):
        value = derive_seed(seed, label)
        assert 0 <= value < 2 ** 64


class TestRngStream:
    def test_same_path_same_sequence(self):
        a = RngStream(7, "x").uniform(size=10)
        b = RngStream(7, "x").uniform(size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_paths_differ(self):
        a = RngStream(7, "x").uniform(size=10)
        b = RngStream(7, "y").uniform(size=10)
        assert not np.array_equal(a, b)

    def test_child_extends_path(self):
        parent = RngStream(7, "x")
        child = parent.child("y")
        assert child.labels == ("x", "y")
        equivalent = RngStream(7, "x", "y")
        np.testing.assert_array_equal(
            child.uniform(size=5), equivalent.uniform(size=5)
        )

    def test_child_independent_of_parent_draws(self):
        p1 = RngStream(7, "x")
        p1.uniform(size=100)  # consume some parent state
        c1 = p1.child("y").uniform(size=5)
        c2 = RngStream(7, "x").child("y").uniform(size=5)
        np.testing.assert_array_equal(c1, c2)

    def test_normal_and_integers(self):
        s = RngStream(3, "n")
        samples = s.normal(0.0, 1.0, 1000)
        assert abs(float(np.mean(samples))) < 0.2
        ints = s.integers(0, 10, 100)
        assert ints.min() >= 0 and ints.max() < 10

    def test_repr_mentions_path(self):
        assert "a/b" in repr(RngStream(1, "a", "b"))

    def test_default_seed_is_stable_constant(self):
        assert DEFAULT_ROOT_SEED == 20060617
