"""Tests for terminal charts."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.ascii_plot import bar_chart, multi_series, sparkline


class TestSparkline:
    def test_monotone_series(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▆█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_downsampling(self):
        out = sparkline(list(range(100)), width=10)
        assert len(out) == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    def test_length_and_charset_property(self, values):
        out = sparkline(values)
        assert len(out) == len(values)
        assert set(out) <= set("▁▂▃▄▅▆▇█")


class TestBarChart:
    def test_alignment_and_values(self):
        text = bar_chart(["a", "longer"], [1.0, 2.0], width=20)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].index("┤") == lines[1].index("┤")
        assert "1.00" in lines[0]
        assert "2.00" in lines[1]

    def test_largest_bar_fills_width(self):
        text = bar_chart(["x"], [10.0], width=10)
        assert "█" * 10 in text

    def test_reference_marker(self):
        text = bar_chart(["a", "b"], [0.5, 2.0], width=20, reference=1.0)
        assert "│" in text.splitlines()[0]  # marker visible in short bar

    def test_unit_suffix(self):
        assert "2.00X" in bar_chart(["a"], [2.0], unit="X")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=2)


class TestMultiSeries:
    def test_aligned_rows_with_ranges(self):
        text = multi_series(
            [0.0, 1.0, 2.0],
            {"temp": [70, 80, 75], "scale": [1.0, 0.5, 0.8]},
            width=30,
            time_unit="ms",
        )
        lines = text.splitlines()
        assert len(lines) == 3  # two series + ruler
        assert "[70.00, 80.00]" in lines[0]
        assert lines[-1].endswith("ms")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            multi_series([0, 1], {"x": [1, 2, 3]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            multi_series([], {"x": []})
        with pytest.raises(ValueError):
            multi_series([0.0], {})
