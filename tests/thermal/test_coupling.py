"""Tests for leakage-temperature coupling."""

import numpy as np
import pytest

from repro.thermal.coupling import (
    LeakageCouplingError,
    coupled_steady_state,
    initialize_coupled_steady,
    loop_gain_estimate,
)
from repro.thermal.layouts import build_cmp_floorplan
from repro.thermal.leakage import LeakageModel
from repro.thermal.model import ThermalModel
from repro.thermal.package import HIGH_PERFORMANCE_PACKAGE


@pytest.fixture()
def setup():
    fp = build_cmp_floorplan()
    model = ThermalModel(fp, HIGH_PERFORMANCE_PACKAGE, 1e-3)
    leakage = LeakageModel(fp, total_reference_w=32.0)
    return model, leakage


class TestFixedPoint:
    def test_converges_and_is_self_consistent(self, setup):
        model, leakage = setup
        n = model.network.n_blocks
        p = np.full(n, 0.5)
        temps, iters = coupled_steady_state(model, leakage, p)
        assert iters < 20
        # The returned point satisfies T = steady(P + leak(T)).
        check = model.steady_state(p + leakage.power(temps[:n]))
        np.testing.assert_allclose(check, temps, atol=1e-5)

    def test_leakage_raises_temperature(self, setup):
        model, leakage = setup
        n = model.network.n_blocks
        p = np.full(n, 0.5)
        without = model.steady_state(p)
        with_leak, _ = coupled_steady_state(model, leakage, p)
        assert np.all(with_leak > without)

    def test_zero_dynamic_power_still_warm(self, setup):
        """Leakage alone keeps the chip above ambient."""
        model, leakage = setup
        n = model.network.n_blocks
        temps, _ = coupled_steady_state(model, leakage, np.zeros(n))
        assert temps[:n].min() > model.network.ambient_c + 0.5

    def test_initialize_sets_model_state(self, setup):
        model, leakage = setup
        n = model.network.n_blocks
        temps = initialize_coupled_steady(model, leakage, np.full(n, 0.3))
        np.testing.assert_array_equal(model.temperatures, temps)

    def test_validation(self, setup):
        model, leakage = setup
        with pytest.raises(ValueError):
            coupled_steady_state(model, leakage, np.zeros(3))
        with pytest.raises(ValueError):
            coupled_steady_state(
                model, leakage, np.zeros(model.network.n_blocks), tolerance_c=0.0
            )


class TestRunaway:
    def test_pathological_leakage_detected(self, setup):
        """A deliberately unstable configuration raises instead of
        silently returning garbage."""
        model, _ = setup
        fp = model.floorplan
        n = model.network.n_blocks
        # Enormous leakage + steep exponent: loop gain far above 1, and an
        # evaluation clamp too high to save it.
        hot_leak = LeakageModel(fp, total_reference_w=600.0, beta=0.08)
        hot_leak.max_eval_temp_c = 10_000.0
        with np.errstate(over="ignore"):  # the overflow IS the scenario
            with pytest.raises(LeakageCouplingError):
                coupled_steady_state(
                    model, hot_leak, np.full(n, 2.0), max_iterations=40
                )

    def test_clamp_bounds_the_operating_envelope(self, setup):
        """With the default evaluation clamp, even very hot operating
        points converge (the empirical fit saturates instead of running
        away)."""
        model, leakage = setup
        n = model.network.n_blocks
        temps, _ = coupled_steady_state(model, leakage, np.full(n, 3.0))
        assert np.isfinite(temps).all()


class TestLoopGain:
    def test_operating_range_gain_below_one(self, setup):
        model, leakage = setup
        n = model.network.n_blocks
        temps = np.full(n, 85.0)
        assert loop_gain_estimate(model, leakage, temps) < 1.0

    def test_gain_grows_with_temperature(self, setup):
        model, leakage = setup
        n = model.network.n_blocks
        cool = loop_gain_estimate(model, leakage, np.full(n, 50.0))
        hot = loop_gain_estimate(model, leakage, np.full(n, 120.0))
        assert hot > cool
