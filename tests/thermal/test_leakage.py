"""Tests for the temperature-dependent leakage model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.layouts import build_cmp_floorplan
from repro.thermal.leakage import DEFAULT_T_REF_C, LeakageModel


@pytest.fixture(scope="module")
def floorplan():
    return build_cmp_floorplan()


@pytest.fixture(scope="module")
def model(floorplan):
    return LeakageModel(floorplan, total_reference_w=32.0)


class TestCalibration:
    def test_total_at_reference_temperature(self, model, floorplan):
        temps = np.full(len(floorplan), DEFAULT_T_REF_C)
        assert model.total_power(temps) == pytest.approx(32.0)

    def test_reference_apportioned_by_weighted_area(self, model, floorplan):
        # The L2 banks are by far the largest blocks -> most reference W.
        l2_idx = floorplan.index("l2_0")
        rf_idx = floorplan.index("core0.intreg")
        assert model.reference_w[l2_idx] > model.reference_w[rf_idx]

    def test_rf_density_exceeds_logic_density(self, model, floorplan):
        rf = floorplan.index("core0.intreg")
        bxu = floorplan.index("core0.bxu")
        rf_density = model.reference_w[rf] / floorplan.blocks[rf].area_mm2
        bxu_density = model.reference_w[bxu] / floorplan.blocks[bxu].area_mm2
        assert rf_density > bxu_density


class TestTemperatureDependence:
    def test_exponential_growth(self, model, floorplan):
        n = len(floorplan)
        cold = model.total_power(np.full(n, 45.0))
        hot = model.total_power(np.full(n, 85.0))
        assert hot > cold
        # exp(0.028 * 40) ~ 3.07
        assert hot / cold == pytest.approx(np.exp(0.028 * 40.0), rel=1e-6)

    def test_per_block_independence(self, model, floorplan):
        n = len(floorplan)
        temps = np.full(n, 60.0)
        base = model.power(temps)
        temps2 = temps.copy()
        temps2[0] += 20.0
        changed = model.power(temps2)
        assert changed[0] > base[0]
        np.testing.assert_allclose(changed[1:], base[1:])


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=20.0, max_value=120.0),
       st.floats(min_value=0.1, max_value=50.0))
def test_monotone_in_temperature(t, dt):
    fp = build_cmp_floorplan()
    model = LeakageModel(fp, total_reference_w=32.0)
    n = len(fp)
    low = model.total_power(np.full(n, t))
    high = model.total_power(np.full(n, t + dt))
    assert high > low


class TestValidationAndScaling:
    def test_shape_validation(self, model):
        with pytest.raises(ValueError):
            model.power(np.zeros(3))

    def test_negative_reference_rejected(self, floorplan):
        with pytest.raises(ValueError):
            LeakageModel(floorplan, total_reference_w=-1.0)

    def test_negative_beta_rejected(self, floorplan):
        with pytest.raises(ValueError):
            LeakageModel(floorplan, 10.0, beta=-0.1)

    def test_voltage_scaling_quadratic(self, model):
        scaled = model.scaled(0.5)
        np.testing.assert_allclose(scaled, model.reference_w * 0.25)

    def test_voltage_scaling_bounds(self, model):
        with pytest.raises(ValueError):
            model.scaled(0.0)
        with pytest.raises(ValueError):
            model.scaled(1.5)

    def test_zero_beta_is_constant(self, floorplan):
        flat = LeakageModel(floorplan, 10.0, beta=0.0)
        n = len(floorplan)
        assert flat.total_power(np.full(n, 40.0)) == pytest.approx(
            flat.total_power(np.full(n, 100.0))
        )
