"""Tests for the thermal RC-network builder."""

import numpy as np
import pytest

from repro.thermal.floorplan import Block, Floorplan
from repro.thermal.layouts import build_cmp_floorplan
from repro.thermal.package import ThermalPackage
from repro.thermal.rc_network import build_rc_network


@pytest.fixture(scope="module")
def network():
    return build_rc_network(build_cmp_floorplan(), ThermalPackage())


class TestStructure:
    def test_node_layout(self, network):
        assert network.node_names[-2:] == ("spreader", "sink")
        assert network.n_blocks == network.n_nodes - 2

    def test_conductance_symmetric(self, network):
        g = network.conductance
        np.testing.assert_allclose(g, g.T, rtol=1e-12)

    def test_off_diagonals_nonpositive(self, network):
        g = network.conductance.copy()
        np.fill_diagonal(g, 0.0)
        assert np.all(g <= 0.0)

    def test_diagonally_dominant_with_ambient_tie(self, network):
        """Row sums are zero except the sink row, which carries g_amb."""
        sums = network.conductance.sum(axis=1)
        np.testing.assert_allclose(sums[:-1], 0.0, atol=1e-10)
        assert sums[-1] == pytest.approx(network.ambient_conductance)

    def test_capacitances_positive(self, network):
        assert np.all(network.capacitance > 0)

    def test_spreader_connects_to_every_block(self, network):
        spreader = network.index("spreader")
        for i in range(network.n_blocks):
            assert network.conductance[i, spreader] < 0.0

    def test_blocks_do_not_connect_to_sink_directly(self, network):
        sink = network.index("sink")
        for i in range(network.n_blocks):
            assert network.conductance[i, sink] == pytest.approx(0.0)

    def test_index_lookup(self, network):
        assert network.node_names[network.index("core0.intreg")] == "core0.intreg"
        with pytest.raises(KeyError):
            network.index("nope")


class TestInputVector:
    def test_ambient_term_on_sink(self, network):
        u = network.input_vector(np.zeros(network.n_blocks))
        assert u[-1] == pytest.approx(
            network.ambient_conductance * network.ambient_c
        )
        assert np.all(u[:-1] == 0.0)

    def test_power_placement(self, network):
        p = np.zeros(network.n_blocks)
        p[3] = 7.5
        u = network.input_vector(p)
        assert u[3] == pytest.approx(7.5)

    def test_shape_validation(self, network):
        with pytest.raises(ValueError):
            network.input_vector(np.zeros(network.n_blocks + 1))


class TestAdjacencyPhysics:
    def test_lateral_conductance_present_between_neighbours(self):
        fp = Floorplan(
            [Block("a", 0, 0, 1, 1), Block("b", 1, 0, 1, 1)]
        )
        net = build_rc_network(fp, ThermalPackage())
        assert net.conductance[0, 1] < 0.0

    def test_no_lateral_conductance_between_distant_blocks(self):
        fp = Floorplan(
            [Block("a", 0, 0, 1, 1), Block("b", 5, 0, 1, 1)]
        )
        net = build_rc_network(fp, ThermalPackage())
        assert net.conductance[0, 1] == pytest.approx(0.0)

    def test_bigger_block_has_bigger_capacitance(self):
        fp = Floorplan(
            [Block("small", 0, 0, 1, 1), Block("big", 2, 0, 3, 3)]
        )
        net = build_rc_network(fp, ThermalPackage())
        assert net.capacitance[1] > net.capacitance[0]

    def test_vertical_resistance_scales_inversely_with_area(self):
        pkg = ThermalPackage()
        r1 = pkg.vertical_resistance_k_per_w(1e-6)
        r2 = pkg.vertical_resistance_k_per_w(2e-6)
        assert r1 == pytest.approx(2.0 * r2)
