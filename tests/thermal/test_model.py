"""Tests for the thermal solver (steady state + exponential transient)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.layouts import build_cmp_floorplan
from repro.thermal.model import ThermalKernel, ThermalModel
from repro.thermal.package import HIGH_PERFORMANCE_PACKAGE

DT = 100_000 / 3.6e9


def make_model() -> ThermalModel:
    return ThermalModel(build_cmp_floorplan(), HIGH_PERFORMANCE_PACKAGE, DT)


@pytest.fixture()
def model():
    return make_model()


class TestSteadyState:
    def test_zero_power_is_ambient(self, model):
        temps = model.steady_state(np.zeros(model.network.n_blocks))
        np.testing.assert_allclose(temps, model.network.ambient_c, atol=1e-8)

    def test_positive_power_heats_above_ambient(self, model):
        p = np.full(model.network.n_blocks, 0.5)
        temps = model.steady_state(p)
        assert np.all(temps > model.network.ambient_c)

    def test_heated_block_is_hottest(self, model):
        p = np.zeros(model.network.n_blocks)
        target = model.network.index("core2.fpreg")
        p[target] = 5.0
        temps = model.steady_state(p)
        assert int(np.argmax(temps[: model.network.n_blocks])) == target

    def test_superposition(self, model):
        """The network is linear: responses to powers add."""
        n = model.network.n_blocks
        rng = np.random.default_rng(0)
        p1, p2 = rng.uniform(0, 2, n), rng.uniform(0, 2, n)
        amb = model.steady_state(np.zeros(n))
        t1 = model.steady_state(p1) - amb
        t2 = model.steady_state(p2) - amb
        t12 = model.steady_state(p1 + p2) - amb
        np.testing.assert_allclose(t12, t1 + t2, rtol=1e-9, atol=1e-9)

    def test_monotone_in_power(self, model):
        n = model.network.n_blocks
        low = model.steady_state(np.full(n, 0.5))
        high = model.steady_state(np.full(n, 1.0))
        assert np.all(high >= low - 1e-12)


class TestTransient:
    def test_converges_to_steady_state(self, model):
        n = model.network.n_blocks
        p = np.full(n, 1.0)
        target = model.steady_state(p)
        for _ in range(200):
            model.step(p, dt=1.0)  # 200 s total, >10x the sink constant
        np.testing.assert_allclose(model.temperatures, target, atol=0.05)

    def test_step_moves_toward_steady(self, model):
        n = model.network.n_blocks
        p = np.full(n, 2.0)
        before = model.temperatures.copy()
        after = model.step(p)
        target = model.steady_state(p)
        gap_before = np.abs(target - before)
        gap_after = np.abs(target - after)
        assert np.all(gap_after <= gap_before + 1e-12)

    def test_exact_against_dense_euler(self, model):
        """The exponential update matches a finely-stepped Euler solution."""
        n = model.network.n_blocks
        p = np.zeros(n)
        p[model.network.index("core0.intreg")] = 4.0
        u = model.network.input_vector(p)

        # Reference: explicit Euler with a 1000x smaller step.
        c_inv = 1.0 / model.network.capacitance
        g = model.network.conductance
        t_ref = np.full(model.network.n_nodes, model.network.ambient_c)
        fine = DT / 1000.0
        for _ in range(1000):
            t_ref = t_ref + fine * c_inv * (u - g @ t_ref)

        model.step(p)  # one exponential step of DT
        np.testing.assert_allclose(model.temperatures, t_ref, atol=1e-4)

    def test_run_returns_trajectory(self, model):
        n = model.network.n_blocks
        schedule = [np.full(n, 1.0)] * 5
        traj = model.run(schedule)
        assert traj.shape == (5, model.network.n_nodes)
        # Heating run: temperatures increase monotonically.
        assert np.all(np.diff(traj[:, 0]) > 0)

    def test_propagator_cache_reuse(self, model):
        model.step(np.zeros(model.network.n_blocks), dt=1e-3)
        model.step(np.zeros(model.network.n_blocks), dt=1e-3)
        assert len(model._propagators) == 2  # DT (constructor) + 1e-3

    def test_unconditional_stability_large_step(self, model):
        """Exponential integration cannot blow up even with huge steps."""
        n = model.network.n_blocks
        p = np.full(n, 2.0)
        model.step(p, dt=100.0)
        target = model.steady_state(p)
        # expm over a stiff 1e6:1 eigenvalue spread carries small numerical
        # residue; what matters is boundedness and closeness, not exactness.
        np.testing.assert_allclose(model.temperatures, target, atol=0.05)


class TestStepOperator:
    """The cached affine propagator and its fused k-step application."""

    def test_apply_matches_step(self, model):
        n = model.network.n_blocks
        p = np.full(n, 1.0)
        op = model.operator_for(DT)
        expected = op.apply(model.temperatures, p)
        got = model.step(p)
        np.testing.assert_array_equal(got, expected)

    def test_step_n_equals_repeated_step(self):
        """step_n(p, k) is bit-identical to k calls of step(p)."""
        a, b = make_model(), make_model()
        n = a.network.n_blocks
        rng = np.random.default_rng(7)
        p = rng.uniform(0, 3, n)
        k = 17
        for _ in range(k):
            a.step(p)
        fused = b.step_n(p, k)
        np.testing.assert_array_equal(fused, a.temperatures)
        np.testing.assert_array_equal(b.temperatures, a.temperatures)

    def test_step_n_zero_is_noop(self, model):
        before = model.temperatures.copy()
        after = model.step_n(np.ones(model.network.n_blocks), 0)
        np.testing.assert_array_equal(after, before)

    def test_step_n_negative_raises(self, model):
        with pytest.raises(ValueError):
            model.step_n(np.zeros(model.network.n_blocks), -1)

    def test_operator_for_caches_instances(self, model):
        assert model.operator_for(DT) is model.operator_for(DT)

    def test_near_equal_dts_get_distinct_operators(self, model):
        """Regression: cache keyed on round(dt, 15) aliased close dts.

        Two adjacent floats are distinct step sizes and must yield
        distinct propagators; the old key collapsed them onto whichever
        was computed first.
        """
        dt2 = float(np.nextafter(DT, np.inf))
        assert dt2 != DT
        assert round(dt2, 15) == round(DT, 15)  # the old key would alias
        op1 = model.operator_for(DT)
        op2 = model.operator_for(dt2)
        assert op1 is not op2
        assert op1.dt != op2.dt
        assert len(model._propagators) == 2


class TestStateManagement:
    def test_initialize_steady(self, model):
        n = model.network.n_blocks
        p = np.full(n, 1.5)
        temps = model.initialize_steady(p)
        np.testing.assert_allclose(temps, model.steady_state(p))

    def test_set_temperatures_validation(self, model):
        with pytest.raises(ValueError):
            model.set_temperatures(np.zeros(3))

    def test_queries(self, model):
        p = np.zeros(model.network.n_blocks)
        p[model.network.index("core1.intreg")] = 10.0
        model.initialize_steady(p)
        assert model.hottest_block() == "core1.intreg"
        assert model.max_block_temperature() == pytest.approx(
            model.temperature_of("core1.intreg")
        )

    def test_block_temperatures_shape(self, model):
        assert model.block_temperatures().shape == (model.network.n_blocks,)


class TestTimeConstants:
    def test_block_constants_in_millisecond_range(self, model):
        """The paper relies on ms-scale heating/cooling constants."""
        tc = model.time_constants()
        fastest_blocks = tc[0]
        assert 1e-3 < fastest_blocks < 20e-3

    def test_slowest_constant_is_package_scale(self, model):
        tc = model.time_constants()
        assert tc[-1] > 1.0  # heatsink: seconds to minutes

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            ThermalModel(build_cmp_floorplan(), HIGH_PERFORMANCE_PACKAGE, 0.0)


class TestOperatorSharing:
    """Kernel-backed operator reuse across independent engines."""

    def test_shared_kernel_shares_operator_instances(self):
        """Models on one kernel hand out the *same* StepOperator, so a
        fleet of chips steps through literally the same matrices."""
        fp = build_cmp_floorplan()
        kernel = ThermalKernel(fp, HIGH_PERFORMANCE_PACKAGE)
        a = ThermalModel(fp, HIGH_PERFORMANCE_PACKAGE, DT, kernel=kernel)
        b = ThermalModel(fp, HIGH_PERFORMANCE_PACKAGE, DT, kernel=kernel)
        assert a.operator_for(DT) is b.operator_for(DT)
        assert len(kernel._propagators) == 1
        # A third dt through either model lands in the shared cache.
        a.operator_for(2 * DT)
        assert b.operator_for(2 * DT) is a.operator_for(2 * DT)

    def test_shared_vs_private_kernel_trajectories_identical(self):
        """Operator reuse is associative: stepping through a shared
        kernel's operator is bitwise the same as through a private one."""
        fp = build_cmp_floorplan()
        kernel = ThermalKernel(fp, HIGH_PERFORMANCE_PACKAGE)
        shared = ThermalModel(fp, HIGH_PERFORMANCE_PACKAGE, DT, kernel=kernel)
        private = ThermalModel(fp, HIGH_PERFORMANCE_PACKAGE, DT)
        rng = np.random.default_rng(11)
        for _ in range(25):
            p = rng.uniform(0, 3, shared.network.n_blocks)
            np.testing.assert_array_equal(
                shared.step(p), private.step(p)
            )

    def test_mismatched_kernel_rejected(self):
        fp_a, fp_b = build_cmp_floorplan(2), build_cmp_floorplan(4)
        kernel = ThermalKernel(fp_a, HIGH_PERFORMANCE_PACKAGE)
        with pytest.raises(ValueError):
            ThermalModel(fp_b, HIGH_PERFORMANCE_PACKAGE, DT, kernel=kernel)


class TestApplyBatch:
    """The fleet contract: batched rows == scalar applications, bitwise."""

    @pytest.mark.parametrize("m", [1, 2, 3, 7, 16, 33])
    def test_rows_bitwise_equal_scalar_apply(self, m):
        model = make_model()
        op = model.operator_for(DT)
        rng = np.random.default_rng(m)
        temps = 40.0 + 80.0 * rng.random((m, model.network.n_nodes))
        power = 20.0 * rng.random((m, model.network.n_blocks))
        batched = op.apply_batch(temps, power)
        for i in range(m):
            np.testing.assert_array_equal(
                batched[i], op.apply(temps[i], power[i])
            )

    def test_slicing_invariance(self):
        """A sub-batch's rows equal the same rows of the full batch —
        the property that lets fleet members retire in place."""
        model = make_model()
        op = model.operator_for(DT)
        rng = np.random.default_rng(5)
        temps = 40.0 + 80.0 * rng.random((12, model.network.n_nodes))
        power = 20.0 * rng.random((12, model.network.n_blocks))
        full = op.apply_batch(temps, power)
        for m in (1, 5, 11):
            np.testing.assert_array_equal(
                op.apply_batch(temps[:m], power[:m]), full[:m]
            )


@settings(max_examples=15, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=40),
    dt_scale=st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_step_n_equals_k_steps_property(k, dt_scale, seed):
    """Property form of the fusion guarantee: for random k, dt and
    power, step_n(p, k) is bit-identical to k repeated step(p) calls."""
    dt = DT * dt_scale
    fp = build_cmp_floorplan()
    kernel = ThermalKernel(fp, HIGH_PERFORMANCE_PACKAGE)
    a = ThermalModel(fp, HIGH_PERFORMANCE_PACKAGE, dt, kernel=kernel)
    b = ThermalModel(fp, HIGH_PERFORMANCE_PACKAGE, dt, kernel=kernel)
    p = np.random.default_rng(seed).uniform(0, 3, a.network.n_blocks)
    for _ in range(k):
        a.step(p)
    np.testing.assert_array_equal(b.step_n(p, k), a.temperatures)


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=1e-9, max_value=1.0, allow_nan=False))
def test_dt_cache_keys_on_exact_bit_pattern(dt):
    """Randomized dts: each distinct float is a distinct cache entry,
    and adjacent floats (indistinguishable to round(dt, 15)) never
    alias to one propagator."""
    model = make_model()
    before = len(model._propagators)
    op = model.operator_for(dt)
    assert model.operator_for(dt) is op
    neighbour = float(np.nextafter(dt, np.inf))
    op2 = model.operator_for(neighbour)
    assert op2 is not op
    assert len(model._propagators) == before + 2


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0.0, max_value=5.0))
def test_steady_state_bounded_property(power_per_block):
    """Uniform power yields temps between ambient and a physical bound."""
    model = make_model()
    n = model.network.n_blocks
    temps = model.steady_state(np.full(n, power_per_block))
    total = power_per_block * n
    upper = model.network.ambient_c + total * 5.0 + 1e-9  # generous R bound
    assert np.all(temps >= model.network.ambient_c - 1e-9)
    assert np.all(temps <= upper)
