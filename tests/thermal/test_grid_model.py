"""Tests for the grid-mode thermal solver, including the block-vs-grid
accuracy cross-check."""

import numpy as np
import pytest

from repro.thermal.grid_model import GridThermalModel
from repro.thermal.layouts import build_cmp_floorplan
from repro.thermal.model import ThermalModel
from repro.thermal.package import HIGH_PERFORMANCE_PACKAGE


@pytest.fixture(scope="module")
def floorplan():
    return build_cmp_floorplan()


@pytest.fixture(scope="module")
def grid(floorplan):
    return GridThermalModel(floorplan, HIGH_PERFORMANCE_PACKAGE, nx=32, ny=24)


@pytest.fixture(scope="module")
def block_model(floorplan):
    return ThermalModel(floorplan, HIGH_PERFORMANCE_PACKAGE, 1e-3)


def gzip_like_power(floorplan):
    """A hot-intreg power vector on core 0."""
    p = np.zeros(len(floorplan))
    powers = {
        "core0.intreg": 6.0, "core0.fxu": 4.0, "core0.decode": 3.5,
        "core0.iq": 3.0, "core0.dcache": 3.0, "core0.icache": 2.5,
        "core0.lsu": 2.5, "core0.bpred": 1.5, "core0.bxu": 0.8,
        "core0.fpreg": 0.4, "core0.fpu": 0.8, "l2_0": 1.5, "xbar": 0.8,
    }
    for name, w in powers.items():
        p[floorplan.index(name)] = w
    return p


class TestConstruction:
    def test_coverage_rows_sum_to_one(self, grid):
        sums = grid._coverage.sum(axis=1)
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)

    def test_cell_power_conserved(self, grid, floorplan):
        p = gzip_like_power(floorplan)
        assert grid.cell_power(p).sum() == pytest.approx(p.sum())

    def test_rejects_tiny_grid(self, floorplan):
        with pytest.raises(ValueError):
            GridThermalModel(floorplan, HIGH_PERFORMANCE_PACKAGE, nx=1, ny=8)

    def test_power_shape_validated(self, grid):
        with pytest.raises(ValueError):
            grid.cell_power(np.zeros(3))


class TestPhysics:
    def test_zero_power_is_ambient(self, grid, floorplan):
        temps = grid.steady_state(np.zeros(len(floorplan)))
        np.testing.assert_allclose(
            temps, HIGH_PERFORMANCE_PACKAGE.ambient_c, atol=1e-7
        )

    def test_hotspot_is_where_power_is(self, grid, floorplan):
        name, temp = grid.hotspot(gzip_like_power(floorplan))
        assert name == "core0.intreg"
        assert temp > HIGH_PERFORMANCE_PACKAGE.ambient_c + 10

    def test_lateral_decay(self, grid, floorplan):
        """Temperature decreases with distance from the heated core."""
        temps = grid.block_temperatures(gzip_like_power(floorplan))
        t = {b.name: temps[i] for i, b in enumerate(floorplan.blocks)}
        assert t["core0.intreg"] > t["core1.intreg"] > t["core3.intreg"]


class TestBlockModelCrossCheck:
    """The headline purpose: quantify the block model's lumping error."""

    def test_hotspot_agreement(self, grid, block_model, floorplan):
        p = gzip_like_power(floorplan)
        block_temps = block_model.steady_state(p)[: len(floorplan)]
        grid_temps = grid.block_temperatures(p)
        b_hot = int(np.argmax(block_temps))
        g_hot = int(np.argmax(grid_temps))
        assert floorplan.blocks[b_hot].name == floorplan.blocks[g_hot].name
        # The block model runs HOT relative to the grid: lumping a block
        # into one node under-represents lateral spreading out of small
        # high-density blocks (the documented block-mode bias). The DTM
        # study is unaffected — policies see consistent, conservative
        # hotspots — but the bias must be bounded and one-sided.
        assert block_temps[b_hot] >= grid_temps[g_hot] - 0.5
        assert block_temps[b_hot] == pytest.approx(grid_temps[g_hot], abs=10.0)

    def test_chip_average_agreement(self, grid, block_model, floorplan):
        p = gzip_like_power(floorplan)
        areas = np.array([b.area_mm2 for b in floorplan.blocks])
        block_avg = float(
            np.average(block_model.steady_state(p)[: len(floorplan)], weights=areas)
        )
        grid_avg = float(
            np.average(grid.block_temperatures(p), weights=areas)
        )
        assert block_avg == pytest.approx(grid_avg, abs=2.0)

    def test_grid_refinement_converges(self, floorplan):
        # 16x12 is too coarse to resolve the register files; from 32x24
        # on, refinement changes the hotspot by well under a degree.
        p = gzip_like_power(floorplan)
        mid = GridThermalModel(
            floorplan, HIGH_PERFORMANCE_PACKAGE, nx=32, ny=24
        ).hotspot(p)[1]
        fine = GridThermalModel(
            floorplan, HIGH_PERFORMANCE_PACKAGE, nx=48, ny=36
        ).hotspot(p)[1]
        assert mid == pytest.approx(fine, abs=1.0)


class TestTransient:
    def test_converges_to_steady_state(self, floorplan):
        grid = GridThermalModel(floorplan, HIGH_PERFORMANCE_PACKAGE, nx=16, ny=12)
        p = gzip_like_power(floorplan)
        target = grid.steady_state(p)
        t = grid.ambient_state()
        for _ in range(600):
            t = grid.transient_step(t, p, dt=0.1)
        np.testing.assert_allclose(t, target, atol=0.1)

    def test_heating_is_monotone(self, floorplan):
        grid = GridThermalModel(floorplan, HIGH_PERFORMANCE_PACKAGE, nx=16, ny=12)
        p = gzip_like_power(floorplan)
        t = grid.ambient_state()
        hot_cells = grid.cell_power(p) > 0
        prev_max = t.max()
        for _ in range(10):
            t = grid.transient_step(t, p, dt=1e-3)
            assert t.max() >= prev_max - 1e-9
            prev_max = t.max()

    def test_unconditional_stability(self, floorplan):
        """Implicit Euler: a huge step lands near steady state, no blowup."""
        grid = GridThermalModel(floorplan, HIGH_PERFORMANCE_PACKAGE, nx=16, ny=12)
        p = gzip_like_power(floorplan)
        t = grid.transient_step(grid.ambient_state(), p, dt=1e6)
        np.testing.assert_allclose(t, grid.steady_state(p), atol=0.5)

    def test_validation(self, grid, floorplan):
        with pytest.raises(ValueError):
            grid.transient_step(grid.ambient_state(), gzip_like_power(floorplan), dt=0.0)
        with pytest.raises(ValueError):
            grid.transient_step(np.zeros(3), gzip_like_power(floorplan), dt=1e-3)

    def test_factorisation_cached_per_dt(self, floorplan):
        grid = GridThermalModel(floorplan, HIGH_PERFORMANCE_PACKAGE, nx=8, ny=6)
        p = gzip_like_power(floorplan)
        t = grid.ambient_state()
        grid.transient_step(t, p, dt=1e-3)
        lu1 = grid._transient_lu
        grid.transient_step(t, p, dt=1e-3)
        assert grid._transient_lu is lu1
        grid.transient_step(t, p, dt=2e-3)
        assert grid._transient_lu is not lu1


class TestTemperatureMap:
    def test_map_renders(self, grid, floorplan):
        text = grid.temperature_map(gzip_like_power(floorplan))
        lines = text.splitlines()
        assert len(lines) == grid.ny + 1  # rows + legend
        assert all(len(line) == grid.nx for line in lines[:-1])
        assert "C" in lines[-1]

    def test_hot_region_uses_hot_glyphs(self, grid, floorplan):
        text = grid.temperature_map(gzip_like_power(floorplan))
        # The '@' (hottest glyph) appears somewhere on the heated die.
        assert "@" in text
