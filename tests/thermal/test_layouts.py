"""Tests for the concrete chip layouts."""

import pytest

from repro.thermal.layouts import (
    CORE_UNITS,
    HOTSPOT_UNITS,
    all_core_blocks,
    build_cmp_floorplan,
    build_core_floorplan,
    build_mobile_floorplan,
    core_block_name,
    core_names,
    hotspot_blocks,
    parse_block_name,
)


class TestCoreFloorplan:
    def test_contains_all_units(self):
        fp = build_core_floorplan()
        assert sorted(fp.names) == sorted(CORE_UNITS)

    def test_covers_core_area(self):
        size = 4.0
        fp = build_core_floorplan(size)
        assert fp.total_area_mm2 == pytest.approx(size * size)

    def test_prefix_and_origin(self):
        fp = build_core_floorplan(2.0, origin=(10.0, 20.0), prefix="c9.")
        icache = fp.block("c9.icache")
        assert icache.x >= 10.0 and icache.y >= 20.0

    def test_register_files_are_small(self):
        """The RFs must be the density hotspots: small area blocks."""
        fp = build_core_floorplan()
        for unit in HOTSPOT_UNITS:
            assert fp.block(unit).area_mm2 < fp.block("fpu").area_mm2

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            build_core_floorplan(0.0)


class TestCmpFloorplan:
    def test_block_count(self):
        fp = build_cmp_floorplan(4)
        # 4 cores x 11 units + xbar + 4 L2 banks.
        assert len(fp) == 4 * len(CORE_UNITS) + 1 + 4

    def test_all_core_blocks_present(self):
        fp = build_cmp_floorplan(4)
        for c in range(4):
            for name in all_core_blocks(c):
                assert name in fp

    def test_cores_sit_above_xbar_above_l2(self):
        fp = build_cmp_floorplan(4)
        xbar = fp.block("xbar")
        l2 = fp.block("l2_0")
        core_block = fp.block("core0.icache")
        assert l2.y2 == pytest.approx(xbar.y)
        assert core_block.y >= xbar.y2 - 1e-9

    def test_cores_are_disjoint_columns(self):
        fp = build_cmp_floorplan(4)
        for c in range(3):
            right = max(fp.block(n).x2 for n in all_core_blocks(c))
            left = min(fp.block(n).x for n in all_core_blocks(c + 1))
            assert right <= left + 1e-9

    def test_scales_with_core_count(self):
        assert len(build_cmp_floorplan(2)) == 2 * len(CORE_UNITS) + 1 + 2

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            build_cmp_floorplan(0)


class TestMobileFloorplan:
    def test_single_core_plus_l2(self):
        fp = build_mobile_floorplan()
        assert len(fp) == len(CORE_UNITS) + 1
        assert "l2_0" in fp


class TestNaming:
    def test_roundtrip(self):
        name = core_block_name(2, "fpreg")
        assert name == "core2.fpreg"
        assert parse_block_name(name) == (2, "fpreg")

    def test_shared_blocks(self):
        assert parse_block_name("xbar") == (-1, "xbar")
        assert parse_block_name("l2_3") == (-1, "l2_3")

    def test_helpers(self):
        assert core_names(2) == ["core0", "core1"]
        assert hotspot_blocks(1) == ["core1.intreg", "core1.fpreg"]
