"""Tests for the thermal sensor model."""

import numpy as np
import pytest

from repro.thermal.layouts import build_cmp_floorplan
from repro.thermal.model import ThermalModel
from repro.thermal.package import HIGH_PERFORMANCE_PACKAGE
from repro.thermal.sensors import (
    SensorBank,
    ThermalSensor,
    ideal_sensor_bank,
    quantize_half_up,
)
from repro.util.rng import RngStream


@pytest.fixture()
def model():
    m = ThermalModel(build_cmp_floorplan(), HIGH_PERFORMANCE_PACKAGE, 1e-3)
    p = np.zeros(m.network.n_blocks)
    p[m.network.index("core0.intreg")] = 6.0
    m.initialize_steady(p)
    return m


class TestThermalSensor:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalSensor("b", lag=1.0)
        with pytest.raises(ValueError):
            ThermalSensor("b", noise_std_c=-1.0)
        with pytest.raises(ValueError):
            ThermalSensor("b", quantization_c=-0.5)


class TestQuantizeHalfUp:
    """The explicit x.5 tie rule (replaces Python's banker's rounding)."""

    def test_ties_round_up(self):
        assert quantize_half_up(0.5, 1.0) == 1.0
        assert quantize_half_up(1.5, 1.0) == 2.0
        assert quantize_half_up(2.5, 1.0) == 3.0

    def test_differs_from_bankers_rounding(self):
        # round() sends 0.5 -> 0 and 2.5 -> 2 (ties to even); the sensor
        # rule pins both to the next grid point up.
        assert round(0.5) == 0 and quantize_half_up(0.5, 1.0) == 1.0
        assert round(2.5) == 2 and quantize_half_up(2.5, 1.0) == 3.0

    def test_negative_ties_toward_plus_inf(self):
        assert quantize_half_up(-0.5, 1.0) == 0.0
        assert quantize_half_up(-1.5, 1.0) == -1.0

    def test_non_ties_round_nearest(self):
        assert quantize_half_up(72.4, 1.0) == 72.0
        assert quantize_half_up(72.6, 1.0) == 73.0
        assert quantize_half_up(-72.4, 1.0) == -72.0

    def test_fractional_grid(self):
        assert quantize_half_up(1.25, 0.5) == 1.5
        assert quantize_half_up(1.1, 0.5) == 1.0

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            quantize_half_up(1.0, 0.0)
        with pytest.raises(ValueError):
            quantize_half_up(1.0, -1.0)


class TestSensorBank:
    def test_ideal_reads_truth(self, model):
        bank = ideal_sensor_bank(["core0.intreg", "core0.fpreg"])
        readings = bank.read(model)
        assert readings["core0.intreg"] == pytest.approx(
            model.temperature_of("core0.intreg")
        )

    def test_offset_applied(self, model):
        bank = SensorBank([ThermalSensor("core0.intreg", offset_c=2.5)])
        truth = model.temperature_of("core0.intreg")
        assert bank.read(model)["core0.intreg"] == pytest.approx(truth + 2.5)

    def test_quantization(self, model):
        bank = SensorBank([ThermalSensor("core0.intreg", quantization_c=1.0)])
        reading = bank.read(model)["core0.intreg"]
        assert reading == pytest.approx(round(reading))

    def test_noise_deterministic_per_stream(self, model):
        def fresh():
            return SensorBank(
                [ThermalSensor("core0.intreg", noise_std_c=0.5)],
                rng=RngStream(42, "t"),
            )

        r1 = fresh().read(model)["core0.intreg"]
        r2 = fresh().read(model)["core0.intreg"]
        assert r1 == r2

    def test_noise_varies_across_reads(self, model):
        bank = SensorBank(
            [ThermalSensor("core0.intreg", noise_std_c=0.5)],
            rng=RngStream(42, "t"),
        )
        values = {bank.read(model)["core0.intreg"] for _ in range(5)}
        assert len(values) > 1

    def test_lag_smooths_step(self, model):
        bank = SensorBank([ThermalSensor("core0.intreg", lag=0.9)])
        first = bank.read(model)["core0.intreg"]
        # Jump the silicon temperature; the lagged sensor follows slowly.
        temps = model.temperatures.copy()
        temps[model.network.index("core0.intreg")] += 10.0
        model.set_temperatures(temps)
        second = bank.read(model)["core0.intreg"]
        assert first < second < first + 2.0

    def test_last_reading_cached(self, model):
        bank = ideal_sensor_bank(["core0.intreg"])
        assert bank.last_reading == {}
        bank.read(model)
        assert "core0.intreg" in bank.last_reading

    def test_reset_clears_state(self, model):
        bank = SensorBank([ThermalSensor("core0.intreg", lag=0.9)])
        bank.read(model)
        bank.reset()
        assert bank.last_reading == {}

    def test_reset_rewinds_rng_stream(self, model):
        """A reused bank must reproduce bit-identical reading sequences."""
        bank = SensorBank(
            [ThermalSensor("core0.intreg", noise_std_c=0.5, lag=0.5)],
            rng=RngStream(7, "reset-test"),
        )
        first_run = [bank.read(model)["core0.intreg"] for _ in range(10)]
        bank.reset()
        second_run = [bank.read(model)["core0.intreg"] for _ in range(10)]
        assert first_run == second_run  # bit-identical, not approx

    def test_reset_matches_fresh_bank(self, model):
        def fresh():
            return SensorBank(
                [ThermalSensor("core0.intreg", noise_std_c=0.5)],
                rng=RngStream(7, "reset-test"),
            )

        bank = fresh()
        [bank.read(model) for _ in range(5)]
        bank.reset()
        resumed = [bank.read(model)["core0.intreg"] for _ in range(5)]
        pristine_bank = fresh()
        pristine = [pristine_bank.read(model)["core0.intreg"] for _ in range(5)]
        assert resumed == pristine

    def test_first_read_seeds_lag_from_truth(self, model):
        """Lag warm-up: the first sample is un-lagged (tracks silicon)."""
        truth = model.temperature_of("core0.intreg")
        bank = SensorBank([ThermalSensor("core0.intreg", lag=0.9)])
        assert bank.read(model)["core0.intreg"] == pytest.approx(truth)

    def test_first_read_still_applies_offset(self, model):
        truth = model.temperature_of("core0.intreg")
        bank = SensorBank(
            [ThermalSensor("core0.intreg", lag=0.9, offset_c=3.0)]
        )
        assert bank.read(model)["core0.intreg"] == pytest.approx(truth + 3.0)

    def test_first_read_still_applies_noise(self, model):
        truth = model.temperature_of("core0.intreg")
        bank = SensorBank(
            [ThermalSensor("core0.intreg", lag=0.9, noise_std_c=0.5)],
            rng=RngStream(3, "warmup"),
        )
        reading = bank.read(model)["core0.intreg"]
        expected_noise = float(RngStream(3, "warmup").normal(0.0, 0.5))
        assert reading == pytest.approx(truth + expected_noise)
        assert reading != truth

    def test_first_read_still_applies_quantization(self, model):
        truth = model.temperature_of("core0.intreg")
        bank = SensorBank(
            [ThermalSensor("core0.intreg", lag=0.9, quantization_c=1.0)]
        )
        assert bank.read(model)["core0.intreg"] == quantize_half_up(truth, 1.0)

    def test_fault_filter_applied_after_pipeline(self, model):
        calls = []

        def fault(time_s, block, value):
            calls.append((time_s, block, value))
            return value + 100.0

        truth = model.temperature_of("core0.intreg")
        bank = SensorBank(
            [ThermalSensor("core0.intreg", offset_c=1.0)], fault_filter=fault
        )
        reading = bank.read(model, time_s=0.25)["core0.intreg"]
        assert reading == pytest.approx(truth + 1.0 + 100.0)
        # The filter saw the post-pipeline (offset-applied) value.
        assert calls == [(0.25, "core0.intreg", pytest.approx(truth + 1.0))]

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            SensorBank([])

    def test_duplicate_sensors_rejected(self):
        with pytest.raises(ValueError):
            SensorBank([ThermalSensor("a"), ThermalSensor("a")])

    def test_blocks_property(self):
        bank = ideal_sensor_bank(["x", "y"])
        assert bank.blocks == ["x", "y"]
