"""Tests for the thermal sensor model."""

import numpy as np
import pytest

from repro.thermal.layouts import build_cmp_floorplan
from repro.thermal.model import ThermalModel
from repro.thermal.package import HIGH_PERFORMANCE_PACKAGE
from repro.thermal.sensors import SensorBank, ThermalSensor, ideal_sensor_bank
from repro.util.rng import RngStream


@pytest.fixture()
def model():
    m = ThermalModel(build_cmp_floorplan(), HIGH_PERFORMANCE_PACKAGE, 1e-3)
    p = np.zeros(m.network.n_blocks)
    p[m.network.index("core0.intreg")] = 6.0
    m.initialize_steady(p)
    return m


class TestThermalSensor:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalSensor("b", lag=1.0)
        with pytest.raises(ValueError):
            ThermalSensor("b", noise_std_c=-1.0)
        with pytest.raises(ValueError):
            ThermalSensor("b", quantization_c=-0.5)


class TestSensorBank:
    def test_ideal_reads_truth(self, model):
        bank = ideal_sensor_bank(["core0.intreg", "core0.fpreg"])
        readings = bank.read(model)
        assert readings["core0.intreg"] == pytest.approx(
            model.temperature_of("core0.intreg")
        )

    def test_offset_applied(self, model):
        bank = SensorBank([ThermalSensor("core0.intreg", offset_c=2.5)])
        truth = model.temperature_of("core0.intreg")
        assert bank.read(model)["core0.intreg"] == pytest.approx(truth + 2.5)

    def test_quantization(self, model):
        bank = SensorBank([ThermalSensor("core0.intreg", quantization_c=1.0)])
        reading = bank.read(model)["core0.intreg"]
        assert reading == pytest.approx(round(reading))

    def test_noise_deterministic_per_stream(self, model):
        def fresh():
            return SensorBank(
                [ThermalSensor("core0.intreg", noise_std_c=0.5)],
                rng=RngStream(42, "t"),
            )

        r1 = fresh().read(model)["core0.intreg"]
        r2 = fresh().read(model)["core0.intreg"]
        assert r1 == r2

    def test_noise_varies_across_reads(self, model):
        bank = SensorBank(
            [ThermalSensor("core0.intreg", noise_std_c=0.5)],
            rng=RngStream(42, "t"),
        )
        values = {bank.read(model)["core0.intreg"] for _ in range(5)}
        assert len(values) > 1

    def test_lag_smooths_step(self, model):
        bank = SensorBank([ThermalSensor("core0.intreg", lag=0.9)])
        first = bank.read(model)["core0.intreg"]
        # Jump the silicon temperature; the lagged sensor follows slowly.
        temps = model.temperatures.copy()
        temps[model.network.index("core0.intreg")] += 10.0
        model.set_temperatures(temps)
        second = bank.read(model)["core0.intreg"]
        assert first < second < first + 2.0

    def test_last_reading_cached(self, model):
        bank = ideal_sensor_bank(["core0.intreg"])
        assert bank.last_reading == {}
        bank.read(model)
        assert "core0.intreg" in bank.last_reading

    def test_reset_clears_state(self, model):
        bank = SensorBank([ThermalSensor("core0.intreg", lag=0.9)])
        bank.read(model)
        bank.reset()
        assert bank.last_reading == {}

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            SensorBank([])

    def test_duplicate_sensors_rejected(self):
        with pytest.raises(ValueError):
            SensorBank([ThermalSensor("a"), ThermalSensor("a")])

    def test_blocks_property(self):
        bank = ideal_sensor_bank(["x", "y"])
        assert bank.blocks == ["x", "y"]
