"""Mesh floorplan invariants and the CMP memoisation regression.

``build_mesh_floorplan`` tiles per-class cores over an L2 fabric with a
NoC spine; the engine relies on the result being a valid (non-overlap)
floorplan whose block names partition into exactly the families the
power-index builder expects. These tests pin those invariants — for the
fixed presets and, via Hypothesis, over random grid shapes and core
class mixes.
"""

import pytest

from repro.scenarios import (
    DENSE_CORE,
    EFFICIENCY_CORE,
    EFFICIENCY_CORE_LAYOUT,
    PERFORMANCE_CORE,
)
from repro.thermal.floorplan import ADJACENCY_TOLERANCE_MM
from repro.thermal.layouts import (
    CORE_UNITS,
    build_cmp_floorplan,
    build_mesh_floorplan,
)

CLASS_POOL = (PERFORMANCE_CORE, EFFICIENCY_CORE, DENSE_CORE)


def assert_mesh_contract(fp, rows, cols):
    """The block-name partition the engine's power indexing requires."""
    n = rows * cols
    names = set(fp.names)
    for i in range(n):
        for unit in CORE_UNITS:
            assert f"core{i}.{unit}" in names
        assert f"l2_{i}" in names
    assert "xbar" in names
    assert len(fp) == n * len(CORE_UNITS) + n + 1


class TestMeshFloorplan:
    def test_homogeneous_mesh_block_partition(self):
        fp = build_mesh_floorplan(4, 4)
        assert_mesh_contract(fp, 4, 4)

    def test_single_tile_mesh(self):
        fp = build_mesh_floorplan(1, 1)
        assert_mesh_contract(fp, 1, 1)

    def test_heterogeneous_mesh_uses_class_geometry(self):
        classes = [PERFORMANCE_CORE] * 4 + [EFFICIENCY_CORE] * 4
        fp = build_mesh_floorplan(2, 4, core_classes=classes)
        assert_mesh_contract(fp, 2, 4)
        # Tile 4 is the first little core: its units follow the
        # efficiency layout scaled to its (smaller) core size.
        layout = dict(EFFICIENCY_CORE_LAYOUT)
        fx, fy, fw, fh = layout["icache"]
        block = fp.block("core4.icache")
        assert block.width == pytest.approx(fw * EFFICIENCY_CORE.size_mm)
        assert block.height == pytest.approx(fh * EFFICIENCY_CORE.size_mm)

    def test_tiles_are_row_major_from_bottom_left(self):
        fp = build_mesh_floorplan(2, 2)
        l2 = [fp.block(f"l2_{i}") for i in range(4)]
        assert l2[0].y == l2[1].y and l2[2].y == l2[3].y
        assert l2[2].y > l2[0].y
        assert l2[1].x > l2[0].x and l2[3].x > l2[2].x

    def test_noc_spine_spans_full_height_at_right_edge(self):
        fp = build_mesh_floorplan(3, 2)
        xbar = fp.block("xbar")
        _, y_min, x_max, y_max = fp.bounding_box
        assert xbar.x2 == pytest.approx(x_max)
        assert xbar.y == pytest.approx(y_min)
        assert xbar.y2 == pytest.approx(y_max)

    def test_memoised_instance_reuse(self):
        assert build_mesh_floorplan(2, 3) is build_mesh_floorplan(2, 3)

    def test_distinct_class_mixes_never_alias(self):
        homo = build_mesh_floorplan(2, 2)
        hetero = build_mesh_floorplan(
            2, 2, core_classes=[EFFICIENCY_CORE] * 4
        )
        assert homo is not hetero
        assert homo.bounding_box != hetero.bounding_box

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            build_mesh_floorplan(0, 4)
        with pytest.raises(ValueError):
            build_mesh_floorplan(2, 2, core_classes=[PERFORMANCE_CORE] * 3)
        with pytest.raises(ValueError):
            build_mesh_floorplan(1, 1, core_size_mm=0.0)


class TestCmpMemoisationRegression:
    """Bugfix: scenarios sharing ``n_cores`` must not alias the cache."""

    def test_core_layouts_participate_in_memo_key(self):
        default = build_cmp_floorplan(4)
        little = build_cmp_floorplan(
            4, core_layouts=[EFFICIENCY_CORE_LAYOUT] * 4
        )
        assert default is not little
        # Same names, different geometry: aliasing would silently hand
        # one scenario the other's thermal RC network.
        assert default.names == little.names
        assert (
            default.block("core0.icache").height
            != little.block("core0.icache").height
        )

    def test_default_layout_requests_still_share_one_instance(self):
        assert build_cmp_floorplan(4) is build_cmp_floorplan(4)


# -- Hypothesis properties (skipped when hypothesis is absent) ------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

grid_strategy = st.tuples(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=4),
).flatmap(
    lambda rc: st.tuples(
        st.just(rc[0]),
        st.just(rc[1]),
        st.lists(
            st.sampled_from(CLASS_POOL),
            min_size=rc[0] * rc[1],
            max_size=rc[0] * rc[1],
        ),
    )
)


@settings(max_examples=30, deadline=None)
@given(grid=grid_strategy)
def test_property_mesh_partition_and_adjacency(grid):
    """Any rows x cols x class mix yields a valid mesh: the Floorplan
    constructor enforces pairwise non-overlap, the name partition holds,
    and every adjacency is symmetric with positive shared length."""
    rows, cols, classes = grid
    fp = build_mesh_floorplan(rows, cols, core_classes=classes)
    assert_mesh_contract(fp, rows, cols)
    for i, j, length, d_i, d_j in fp.adjacent_pairs():
        assert length > ADJACENCY_TOLERANCE_MM
        a, b = fp.blocks[i], fp.blocks[j]
        assert not a.overlaps(b)
        back_length, back_d_j, back_d_i = b.shared_edge(a)
        assert back_length == pytest.approx(length)
        assert (back_d_i, back_d_j) == (d_i, d_j)


@settings(max_examples=30, deadline=None)
@given(grid=grid_strategy)
def test_property_every_tile_connects_to_the_fabric(grid):
    """No block is thermally isolated: core units tile their core, each
    core sits on its L2 bank, L2 banks chain across a row, and every row
    reaches the NoC spine — so the adjacency graph is connected."""
    rows, cols, classes = grid
    fp = build_mesh_floorplan(rows, cols, core_classes=classes)
    adjacency = {i: set() for i in range(len(fp))}
    for i, j, _, _, _ in fp.adjacent_pairs():
        adjacency[i].add(j)
        adjacency[j].add(i)
    seen = set()
    stack = [0]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(adjacency[node] - seen)
    assert seen == set(range(len(fp)))
