"""Tests for package and material parameters."""

import pytest

from repro.thermal.materials import COPPER, INTERFACE, SILICON, Material
from repro.thermal.package import (
    HIGH_PERFORMANCE_PACKAGE,
    MOBILE_PACKAGE,
    ThermalPackage,
)


class TestMaterials:
    def test_standard_values_sane(self):
        assert 80 < SILICON.conductivity < 160
        assert COPPER.conductivity > SILICON.conductivity
        assert INTERFACE.conductivity < SILICON.conductivity

    def test_validation(self):
        with pytest.raises(ValueError):
            Material("bad", conductivity=-1.0, volumetric_heat_capacity=1.0)
        with pytest.raises(ValueError):
            Material("bad", conductivity=1.0, volumetric_heat_capacity=0.0)


class TestThermalPackage:
    def test_defaults_valid(self):
        pkg = ThermalPackage()
        assert pkg.ambient_c == pytest.approx(45.0)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            ThermalPackage(die_thickness_m=0.0)
        with pytest.raises(ValueError):
            ThermalPackage(convection_resistance_k_per_w=-0.1)

    def test_vertical_resistance_includes_tim(self):
        pkg = ThermalPackage()
        area = 1e-6
        r_with = pkg.vertical_resistance_k_per_w(area)
        no_tim = ThermalPackage(tim_thickness_m=1e-12)
        assert r_with > no_tim.vertical_resistance_k_per_w(area)

    def test_vertical_resistance_rejects_bad_area(self):
        with pytest.raises(ValueError):
            ThermalPackage().vertical_resistance_k_per_w(0.0)

    def test_block_capacity_scales_with_area(self):
        pkg = ThermalPackage()
        assert pkg.block_heat_capacity_j_per_k(2e-6) == pytest.approx(
            2.0 * pkg.block_heat_capacity_j_per_k(1e-6)
        )

    def test_spreader_capacity_from_geometry(self):
        pkg = ThermalPackage()
        volume = pkg.spreader_side_m ** 2 * pkg.spreader_thickness_m
        expected = volume * COPPER.volumetric_heat_capacity
        assert pkg.spreader_heat_capacity_j_per_k == pytest.approx(expected)

    def test_mobile_package_cools_worse(self):
        """Notebook cooling: higher external resistance than the desktop."""
        hp = HIGH_PERFORMANCE_PACKAGE
        mobile = MOBILE_PACKAGE
        hp_total = hp.sink_resistance_k_per_w + hp.convection_resistance_k_per_w
        mb_total = (
            mobile.sink_resistance_k_per_w + mobile.convection_resistance_k_per_w
        )
        assert mb_total > 2 * hp_total

    def test_mobile_chassis_cooler_than_server(self):
        assert MOBILE_PACKAGE.ambient_c < HIGH_PERFORMANCE_PACKAGE.ambient_c
