"""Tests for floorplan geometry and adjacency."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.thermal.floorplan import Block, Floorplan


class TestBlock:
    def test_basic_geometry(self):
        b = Block("a", 1.0, 2.0, 3.0, 4.0)
        assert b.x2 == pytest.approx(4.0)
        assert b.y2 == pytest.approx(6.0)
        assert b.area_mm2 == pytest.approx(12.0)
        assert b.center == (pytest.approx(2.5), pytest.approx(4.0))

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Block("a", 0, 0, 0.0, 1.0)
        with pytest.raises(ValueError):
            Block("a", 0, 0, 1.0, -1.0)

    def test_translation(self):
        b = Block("a", 0, 0, 1, 1).translated(2, 3, rename="b")
        assert (b.name, b.x, b.y) == ("b", 2, 3)

    def test_overlap_detection(self):
        a = Block("a", 0, 0, 2, 2)
        assert a.overlaps(Block("b", 1, 1, 2, 2))
        assert not a.overlaps(Block("b", 2, 0, 2, 2))  # touching edges only
        assert not a.overlaps(Block("b", 5, 5, 1, 1))

    def test_shared_edge_vertical(self):
        a = Block("a", 0, 0, 2, 4)
        b = Block("b", 2, 1, 2, 2)
        length, da, db = a.shared_edge(b)
        assert length == pytest.approx(2.0)  # y-overlap of [1,3] within [0,4]
        assert da == pytest.approx(1.0)  # half of a's width
        assert db == pytest.approx(1.0)

    def test_shared_edge_horizontal(self):
        a = Block("a", 0, 0, 4, 1)
        b = Block("b", 1, 1, 2, 3)
        length, da, db = a.shared_edge(b)
        assert length == pytest.approx(2.0)
        assert da == pytest.approx(0.5)  # half of a's height
        assert db == pytest.approx(1.5)

    def test_no_shared_edge(self):
        a = Block("a", 0, 0, 1, 1)
        assert a.shared_edge(Block("b", 5, 5, 1, 1))[0] == 0.0

    def test_corner_touch_is_not_adjacency(self):
        a = Block("a", 0, 0, 1, 1)
        b = Block("b", 1, 1, 1, 1)
        assert a.shared_edge(b)[0] == 0.0


class TestFloorplan:
    def _two_by_two(self):
        return Floorplan(
            [
                Block("sw", 0, 0, 1, 1),
                Block("se", 1, 0, 1, 1),
                Block("nw", 0, 1, 1, 1),
                Block("ne", 1, 1, 1, 1),
            ]
        )

    def test_lookup(self):
        fp = self._two_by_two()
        assert fp.block("se").x == 1
        assert fp.index("nw") == 2
        assert "ne" in fp
        assert len(fp) == 4

    def test_unknown_block(self):
        with pytest.raises(KeyError):
            self._two_by_two().block("zz")
        with pytest.raises(KeyError):
            self._two_by_two().index("zz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Floorplan([Block("a", 0, 0, 1, 1), Block("a", 2, 0, 1, 1)])

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            Floorplan([Block("a", 0, 0, 2, 2), Block("b", 1, 1, 2, 2)])

    def test_adjacent_pairs_of_grid(self):
        fp = self._two_by_two()
        pairs = fp.adjacent_pairs()
        # A 2x2 grid has 4 adjacencies (no diagonals).
        assert len(pairs) == 4
        for i, j, length, di, dj in pairs:
            assert i < j
            assert length == pytest.approx(1.0)
            assert di == pytest.approx(0.5)
            assert dj == pytest.approx(0.5)

    def test_bounding_box_and_area(self):
        fp = self._two_by_two()
        assert fp.bounding_box == (0, 0, 2, 2)
        assert fp.total_area_mm2 == pytest.approx(4.0)

    def test_merge(self):
        fp = self._two_by_two()
        other = Floorplan([Block("x", 5, 5, 1, 1)])
        merged = fp.merged_with(other)
        assert len(merged) == 5


@st.composite
def grid_floorplans(draw):
    """Random floorplans formed by subdividing a rectangle into a grid.

    Construction guarantees no overlaps, so the Floorplan validator must
    accept every instance.
    """
    nx = draw(st.integers(min_value=1, max_value=4))
    ny = draw(st.integers(min_value=1, max_value=4))
    widths = [draw(st.floats(min_value=0.5, max_value=3.0)) for _ in range(nx)]
    heights = [draw(st.floats(min_value=0.5, max_value=3.0)) for _ in range(ny)]
    blocks = []
    y = 0.0
    for row, h in enumerate(heights):
        x = 0.0
        for col, w in enumerate(widths):
            blocks.append(Block(f"b{row}_{col}", x, y, w, h))
            x += w
        y += h
    return Floorplan(blocks), nx, ny


@given(grid_floorplans())
def test_grid_adjacency_count_property(data):
    """A full nx x ny grid has exactly nx*(ny-1) + ny*(nx-1) adjacencies."""
    fp, nx, ny = data
    expected = nx * (ny - 1) + ny * (nx - 1)
    assert len(fp.adjacent_pairs()) == expected


@given(grid_floorplans())
def test_shared_edges_symmetric_property(data):
    fp, _nx, _ny = data
    for i, j, length, di, dj in fp.adjacent_pairs():
        back_length, dj2, di2 = fp.blocks[j].shared_edge(fp.blocks[i])
        assert back_length == pytest.approx(length)
        assert di2 == pytest.approx(di)
        assert dj2 == pytest.approx(dj)
