"""End-to-end integration tests.

These cross module boundaries deliberately: benchmark profiles feed trace
generation, traces feed the engine, policies actuate against the thermal
model, and the experiment harness aggregates — one failure anywhere shows
up here.
"""

import numpy as np
import pytest

from repro import (
    ALL_POLICY_SPECS,
    SimulationConfig,
    get_workload,
    run_workload,
    spec_by_key,
)
from repro.sim.engine import ThermalTimingSimulator

W3 = get_workload("workload3")
QUICK = SimulationConfig(duration_s=0.03)


class TestAllTwelvePolicies:
    """Every taxonomy cell runs end to end, safely, on one workload."""

    @pytest.mark.parametrize("spec", ALL_POLICY_SPECS, ids=lambda s: s.key)
    def test_policy_completes_and_is_safe(self, spec):
        result = run_workload(W3, spec, QUICK)
        assert result.bips > 0
        assert 0.0 < result.duty_cycle <= 1.0
        assert result.duration_s == pytest.approx(0.03, rel=0.01)
        # Thermal envelope: threshold plus the emergency tolerance.
        assert result.max_temp_c <= 84.2 + 0.35 + 0.2, spec.key


class TestPhysicalConsistency:
    def test_throttled_never_beats_unthrottled(self):
        free = run_workload(W3, None, QUICK)
        for key in ("distributed-dvfs-none", "distributed-stop-go-none"):
            throttled = run_workload(W3, spec_by_key(key), QUICK)
            assert throttled.bips <= free.bips * 1.001

    def test_duty_cycle_tracks_throughput(self):
        """Across policies, BIPS and duty cycle move together."""
        keys = [
            "global-stop-go-none",
            "distributed-stop-go-none",
            "global-dvfs-none",
            "distributed-dvfs-none",
        ]
        results = [run_workload(W3, spec_by_key(k), QUICK) for k in keys]
        bips = [r.bips for r in results]
        duty = [r.duty_cycle for r in results]
        assert np.corrcoef(bips, duty)[0, 1] > 0.9

    def test_hotter_ambient_hurts(self):
        from dataclasses import replace

        from repro.thermal.package import ThermalPackage

        cool_pkg = ThermalPackage(ambient_c=35.0)
        hot_pkg = ThermalPackage(ambient_c=55.0)
        cool = run_workload(
            W3, spec_by_key("distributed-dvfs-none"),
            replace(QUICK, package=cool_pkg),
        )
        hot = run_workload(
            W3, spec_by_key("distributed-dvfs-none"),
            replace(QUICK, package=hot_pkg),
        )
        assert hot.bips < cool.bips

    def test_lower_threshold_hurts(self):
        from dataclasses import replace

        strict = run_workload(
            W3, spec_by_key("distributed-dvfs-none"),
            replace(QUICK, threshold_c=80.0),
        )
        relaxed = run_workload(
            W3, spec_by_key("distributed-dvfs-none"),
            replace(QUICK, threshold_c=95.0),
        )
        assert strict.bips < relaxed.bips
        assert strict.max_temp_c <= 80.0 + 0.55


class TestStateIsolation:
    def test_simulators_do_not_share_state(self):
        """Two simulators built from the same inputs stay independent."""
        sim1 = ThermalTimingSimulator(
            W3.benchmarks, spec_by_key("distributed-dvfs-none"), QUICK
        )
        sim2 = ThermalTimingSimulator(
            W3.benchmarks, spec_by_key("distributed-dvfs-none"), QUICK
        )
        r1 = sim1.run()
        # sim1's run must not have perturbed sim2 (traces are shared
        # read-only; processes and thermal state are per-simulator).
        r2 = sim2.run()
        assert r1.bips == pytest.approx(r2.bips)

    def test_processes_reset_between_runs(self):
        sim = ThermalTimingSimulator(
            W3.benchmarks, spec_by_key("distributed-stop-go-none"), QUICK
        )
        sim.run()
        positions = [p.position for p in sim.scheduler.processes]
        assert all(pos > 0 for pos in positions)  # the run made progress


class TestCounterFlowEndToEnd:
    def test_counters_populated_through_engine(self):
        sim = ThermalTimingSimulator(
            W3.benchmarks, spec_by_key("distributed-dvfs-counter"), QUICK
        )
        sim.run()
        for proc in sim.scheduler.processes:
            assert proc.counters.instructions > 0
            assert proc.counters.adjusted_cycles > 0
            assert proc.counters.adjusted_cycles <= proc.counters.cycles

    def test_thermal_table_populated_for_sensor_policy(self):
        sim = ThermalTimingSimulator(
            W3.benchmarks, spec_by_key("distributed-dvfs-sensor"), QUICK
        )
        sim.run()
        assert sim.thermal_table.n_observations() > 0

    def test_int_thread_counters_lean_int(self):
        sim = ThermalTimingSimulator(
            ("gzip", "gzip", "sixtrack", "sixtrack"),
            spec_by_key("distributed-dvfs-none"),
            QUICK,
        )
        sim.run()
        gzip_proc = sim.scheduler.process(0)
        six_proc = sim.scheduler.process(2)
        assert (
            gzip_proc.counters.int_rf_per_adjusted_cycle
            > gzip_proc.counters.fp_rf_per_adjusted_cycle
        )
        assert (
            six_proc.counters.fp_rf_per_adjusted_cycle
            > six_proc.counters.int_rf_per_adjusted_cycle
        )
