"""Generalisation: do the paper's conclusions survive off-Table-4 mixes?

Table 4 is a hand-picked selection. These tests draw random four-program
workloads from the 22 benchmarks and verify the taxonomy's core orderings
hold on every one of them — the conclusions are properties of the policy
space, not artifacts of the workload selection.
"""

import pytest

from repro.core.taxonomy import spec_by_key
from repro.sim.engine import SimulationConfig, run_workload
from repro.sim.workloads import Workload, random_workload

CFG = SimulationConfig(duration_s=0.05)
SEEDS = (11, 23, 47)


@pytest.fixture(scope="module", params=SEEDS)
def workload(request) -> Workload:
    return random_workload(request.param)


class TestRandomWorkloadGeneration:
    def test_deterministic(self):
        assert random_workload(5).benchmarks == random_workload(5).benchmarks

    def test_distinct_programs(self):
        for seed in range(20):
            w = random_workload(seed)
            assert len(set(w.benchmarks)) == 4

    def test_custom_name(self):
        assert random_workload(1, name="mix").name == "mix"


class TestOrderingsGeneralise:
    def test_dvfs_beats_stopgo(self, workload):
        dvfs = run_workload(workload, spec_by_key("distributed-dvfs-none"), CFG)
        stopgo = run_workload(
            workload, spec_by_key("distributed-stop-go-none"), CFG
        )
        assert dvfs.bips > stopgo.bips, workload.label

    def test_distributed_beats_global_stopgo(self, workload):
        dist = run_workload(
            workload, spec_by_key("distributed-stop-go-none"), CFG
        )
        glob = run_workload(workload, spec_by_key("global-stop-go-none"), CFG)
        assert dist.bips >= glob.bips * 0.999, workload.label

    def test_every_policy_safe(self, workload):
        for key in (
            "distributed-dvfs-none",
            "distributed-stop-go-none",
            "global-dvfs-none",
            "distributed-dvfs-sensor",
        ):
            result = run_workload(workload, spec_by_key(key), CFG)
            assert result.emergency_s == 0.0, (workload.label, key)

    def test_migration_helps_stopgo(self, workload):
        base = run_workload(
            workload, spec_by_key("distributed-stop-go-none"), CFG
        )
        mig = run_workload(
            workload, spec_by_key("distributed-stop-go-counter"), CFG
        )
        # Cool random mixes may not throttle at all (nothing to rescue);
        # migration must never hurt materially and must help hot mixes.
        assert mig.bips >= base.bips * 0.97, workload.label
