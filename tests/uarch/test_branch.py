"""Tests for the hybrid branch predictor."""

import pytest

from repro.uarch.branch import (
    HybridPredictor,
    SyntheticBranchStream,
    _CounterTable,
    branch_stall_cpi,
)
from repro.uarch.config import BranchPredictorConfig
from repro.util.rng import RngStream


class TestCounterTable:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            _CounterTable(1000)

    def test_saturation(self):
        t = _CounterTable(16)
        for _ in range(10):
            t.update(3, True)
        assert t.counters[3] == 3
        for _ in range(10):
            t.update(3, False)
        assert t.counters[3] == 0

    def test_initialized_weakly_taken(self):
        t = _CounterTable(16)
        assert t.predict(0)  # counter starts at 2 -> predict taken


class TestHybridPredictor:
    def test_learns_always_taken(self):
        p = HybridPredictor()
        pc = 0x4000
        for _ in range(10):
            p.update(pc, True)
        assert p.predict(pc)

    def test_learns_always_not_taken(self):
        p = HybridPredictor()
        pc = 0x4000
        for _ in range(10):
            p.update(pc, False)
        assert not p.predict(pc)

    def test_statistics(self):
        p = HybridPredictor()
        for i in range(100):
            p.update(0x100, True)
        assert p.predictions == 100
        assert p.misprediction_rate < 0.1

    def test_reset_counters_keeps_training(self):
        p = HybridPredictor()
        for _ in range(50):
            p.update(0x10, True)
        p.reset_counters()
        assert p.predictions == 0
        assert p.predict(0x10)

    def test_gshare_learns_alternating_pattern(self):
        """History-based prediction: a strict T/NT alternation is learned
        by gshare (bimodal alone would stay ~50%)."""
        p = HybridPredictor(BranchPredictorConfig())
        pc = 0x88
        taken = True
        # training
        for _ in range(2000):
            p.update(pc, taken)
            taken = not taken
        p.reset_counters()
        for _ in range(500):
            p.update(pc, taken)
            taken = not taken
        assert p.misprediction_rate < 0.05

    def test_predictable_stream_low_misprediction(self):
        p = HybridPredictor()
        stream = SyntheticBranchStream(0.95, rng=RngStream(1, "b"))
        for _ in range(4000):
            pc, taken = stream.next_branch()
            p.update(pc, taken)
        p.reset_counters()
        for _ in range(2000):
            pc, taken = stream.next_branch()
            p.update(pc, taken)
        assert p.misprediction_rate < 0.10

    def test_unpredictable_stream_high_misprediction(self):
        p = HybridPredictor()
        hard = SyntheticBranchStream(0.0, rng=RngStream(1, "b"))
        for _ in range(4000):
            pc, taken = hard.next_branch()
            p.update(pc, taken)
        assert p.misprediction_rate > 0.25

    def test_predictability_is_monotone(self):
        def rate(predictability):
            p = HybridPredictor()
            s = SyntheticBranchStream(predictability, rng=RngStream(7, "m"))
            for _ in range(3000):
                pc, taken = s.next_branch()
                p.update(pc, taken)
            return p.misprediction_rate

        assert rate(0.9) < rate(0.4) < rate(0.0) + 0.2


class TestAnalytic:
    def test_branch_stall_cpi(self):
        assert branch_stall_cpi(0.0) == 0.0
        assert branch_stall_cpi(5.0) == pytest.approx(5.0 / 1000 * 12)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            branch_stall_cpi(-1.0)


class TestSyntheticStream:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticBranchStream(1.5)

    def test_pcs_are_stable(self):
        s = SyntheticBranchStream(0.5, rng=RngStream(2, "s"))
        pcs = {s.next_branch()[0] for _ in range(1000)}
        assert len(pcs) <= s.n_static
