"""Cross-validation: the cycle-level pipeline vs. the interval engine.

The fast interval engine generates all production traces; the cycle-level
pipeline is the reference implementation. They will not agree on absolute
IPC (the pipeline is a simplified machine), but they must agree on the
*structure* the thermal study depends on: which benchmarks are fast/slow,
and which register file each benchmark stresses.
"""

import pytest

from repro.uarch.benchmarks import get_benchmark
from repro.uarch.config import MachineConfig
from repro.uarch.interval_model import simulate_intervals
from repro.uarch.pipeline import OutOfOrderCore
from repro.util.rng import RngStream

BENCHMARKS = ("gzip", "mcf", "sixtrack", "swim", "crafty")


@pytest.fixture(scope="module")
def pipeline_stats():
    out = {}
    for name in BENCHMARKS:
        core = OutOfOrderCore(get_benchmark(name), MachineConfig(), seed=0)
        out[name] = core.run(15_000)
    return out


@pytest.fixture(scope="module")
def interval_stats():
    cfg = MachineConfig()
    return {
        name: simulate_intervals(
            get_benchmark(name), cfg, 200, RngStream(0, "xval", name)
        )
        for name in BENCHMARKS
    }


def test_ipc_ordering_agrees(pipeline_stats, interval_stats):
    """Sorting benchmarks by IPC gives the same extremes in both models."""
    pipe_order = sorted(BENCHMARKS, key=lambda n: pipeline_stats[n].ipc)
    interval_order = sorted(BENCHMARKS, key=lambda n: interval_stats[n].mean_ipc)
    assert pipe_order[0] == interval_order[0] == "mcf"
    # The fastest FP program appears in the top two of both models (exact
    # top-two sets can differ: the pipeline is a simplified machine).
    assert "sixtrack" in pipe_order[-2:]
    assert "sixtrack" in interval_order[-2:]


def test_rf_bias_agrees(pipeline_stats, interval_stats):
    """Both models agree on which RF each benchmark leans on."""
    for name in BENCHMARKS:
        pipe = pipeline_stats[name]
        pipe_bias = pipe.unit_accesses["intreg"] >= pipe.unit_accesses["fpreg"]
        iv = interval_stats[name]
        iv_bias = (
            iv.unit_activity[:, iv.unit_index("intreg")].mean()
            >= iv.unit_activity[:, iv.unit_index("fpreg")].mean()
        )
        assert pipe_bias == iv_bias, name


def test_rf_intensity_correlates(pipeline_stats, interval_stats):
    """Per-instruction int-RF access rates correlate across the models."""
    import numpy as np

    pipe = [
        pipeline_stats[n].accesses_per_kinst("intreg") for n in BENCHMARKS
    ]
    iv = [
        float(
            interval_stats[n].int_rf_accesses.sum()
            / interval_stats[n].instructions.sum()
            * 1000.0
        )
        for n in BENCHMARKS
    ]
    r = np.corrcoef(pipe, iv)[0, 1]
    assert r > 0.9


def test_memory_boundedness_agrees(pipeline_stats):
    """The pipeline's observed miss rates separate mcf from gzip the way
    the profiles claim."""
    assert (
        pipeline_stats["mcf"].l1d_mpki
        > 3 * pipeline_stats["gzip"].l1d_mpki
    )
