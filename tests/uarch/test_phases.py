"""Tests for phase-behaviour generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.phases import (
    SHAPES,
    PhaseSpec,
    oscillating_phase,
    stable_phase,
)
from repro.util.rng import RngStream


def rng():
    return RngStream(1, "phase-test")


class TestValidation:
    def test_unknown_shape(self):
        with pytest.raises(ValueError, match="unknown phase shape"):
            PhaseSpec(shape="triangle")

    def test_bad_period(self):
        with pytest.raises(ValueError):
            PhaseSpec(shape="sine", period_s=0.0)

    def test_bad_amplitude(self):
        with pytest.raises(ValueError):
            PhaseSpec(shape="sine", amplitude=1.0)

    def test_bad_jitter(self):
        with pytest.raises(ValueError):
            PhaseSpec(jitter=-0.1)

    def test_modulation_arg_validation(self):
        spec = stable_phase()
        with pytest.raises(ValueError):
            spec.modulation(0, 1e-3, rng())
        with pytest.raises(ValueError):
            spec.modulation(10, 0.0, rng())


class TestShapes:
    def test_constant_is_one(self):
        spec = PhaseSpec(shape="constant", jitter=0.0)
        m = spec.modulation(100, 1e-3, rng())
        np.testing.assert_allclose(m, 1.0)

    def test_sine_period(self):
        spec = PhaseSpec(shape="sine", period_s=0.01, amplitude=0.3, jitter=0.0)
        m = spec.modulation(1000, 1e-4, rng())  # 10 periods
        # Autocorrelation at one period should be near-perfect.
        period_samples = 100
        a, b = m[:-period_samples], m[period_samples:]
        corr = np.corrcoef(a, b)[0, 1]
        assert corr > 0.99

    def test_square_two_levels(self):
        spec = PhaseSpec(shape="square", period_s=0.01, amplitude=0.25, jitter=0.0)
        m = spec.modulation(500, 1e-4, rng())
        levels = np.unique(np.round(m, 6))
        assert len(levels) == 2
        np.testing.assert_allclose(sorted(levels), [0.75, 1.25])

    def test_sawtooth_ramps(self):
        spec = PhaseSpec(shape="sawtooth", period_s=0.01, amplitude=0.2, jitter=0.0)
        m = spec.modulation(100, 1e-4, rng())  # one period
        # Mostly increasing within a period.
        assert np.sum(np.diff(m) > 0) > 90

    def test_random_walk_bounded(self):
        spec = PhaseSpec(shape="random_walk", amplitude=0.1, jitter=0.0)
        m = spec.modulation(5000, 1e-4, rng())
        assert m.min() >= 0.9 - 1e-9
        assert m.max() <= 1.1 + 1e-9


class TestDeterminism:
    def test_same_stream_same_waveform(self):
        spec = oscillating_phase("sine", 0.05, 0.3)
        a = spec.modulation(200, 1e-3, RngStream(5, "s"))
        b = spec.modulation(200, 1e-3, RngStream(5, "s"))
        np.testing.assert_array_equal(a, b)

    def test_different_stream_different_jitter(self):
        spec = stable_phase(jitter=0.05)
        a = spec.modulation(200, 1e-3, RngStream(5, "s"))
        b = spec.modulation(200, 1e-3, RngStream(6, "s"))
        assert not np.array_equal(a, b)


class TestOscillationFlag:
    def test_table_1b_distinction(self):
        assert oscillating_phase("sine", 0.05, 0.3).is_oscillating
        assert not stable_phase().is_oscillating
        # Tiny-amplitude sine does not count as a Table 1b oscillator.
        assert not PhaseSpec(shape="sine", amplitude=0.01).is_oscillating


@settings(max_examples=30, deadline=None)
@given(
    shape=st.sampled_from(SHAPES),
    amplitude=st.floats(min_value=0.0, max_value=0.6),
    jitter=st.floats(min_value=0.0, max_value=0.1),
    n=st.integers(min_value=1, max_value=400),
)
def test_modulation_always_positive_property(shape, amplitude, jitter, n):
    """Whatever the parameters, activity modulation stays >= 0.05."""
    spec = PhaseSpec(shape=shape, period_s=0.02, amplitude=amplitude, jitter=jitter)
    m = spec.modulation(n, 1e-3, RngStream(9, shape))
    assert m.shape == (n,)
    assert np.all(m >= 0.05)
    assert np.all(np.isfinite(m))
