"""Tests for the PowerTimer-style power model."""

import numpy as np
import pytest

from repro.uarch.benchmarks import get_benchmark
from repro.uarch.config import MachineConfig
from repro.uarch.interval_model import UNIT_ORDER, simulate_intervals
from repro.uarch.power import (
    IDLE_POWER_FRACTION,
    UNIT_IDLE_FRACTION,
    UNIT_PEAK_DYNAMIC_W,
    PowerModel,
    dynamic_power_scale,
    leakage_voltage_scale,
)
from repro.util.rng import RngStream


@pytest.fixture(scope="module")
def model():
    return PowerModel(MachineConfig())


def stats(name):
    return simulate_intervals(
        get_benchmark(name), MachineConfig(), 300, RngStream(0, "pw", name)
    )


class TestUnitPower:
    def test_every_unit_has_a_peak(self):
        assert set(UNIT_PEAK_DYNAMIC_W) == set(UNIT_ORDER)

    def test_power_between_floor_and_peak(self, model):
        p = model.core_unit_power(stats("gzip"))
        peaks = model.unit_peaks
        floors = np.array(
            [UNIT_IDLE_FRACTION.get(u, IDLE_POWER_FRACTION) for u in UNIT_ORDER]
        )
        assert np.all(p >= peaks * floors - 1e-12)
        assert np.all(p <= peaks + 1e-12)

    def test_register_files_dominate_density(self, model):
        """The RFs must be the hotspots: highest W/mm^2 on a hot program."""
        from repro.thermal.layouts import build_core_floorplan

        fp = build_core_floorplan()
        p = model.core_unit_power(stats("gzip")).mean(axis=0)
        density = {
            u: p[i] / fp.block(u).area_mm2 for i, u in enumerate(UNIT_ORDER)
        }
        assert max(density, key=density.get) == "intreg"

    def test_hot_program_draws_more_than_cool(self, model):
        hot = model.core_unit_power(stats("gzip")).sum(axis=1).mean()
        cool = model.core_unit_power(stats("mcf")).sum(axis=1).mean()
        assert hot > 1.8 * cool

    def test_core_budget_sane(self, model):
        """Hot benchmark ~25-35 W of core dynamic power (docstring claim)."""
        total = model.core_unit_power(stats("gzip")).sum(axis=1).mean()
        assert 22.0 < total < 38.0

    def test_scale_parameter(self):
        base = PowerModel(MachineConfig())
        doubled = PowerModel(MachineConfig(), scale=2.0)
        np.testing.assert_allclose(doubled.unit_peaks, 2.0 * base.unit_peaks)
        assert doubled.reference_leakage_w == pytest.approx(
            2.0 * base.reference_leakage_w
        )

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(MachineConfig(), scale=0.0)


class TestSharedStructures:
    def test_l2_bank_power_tracks_activity(self, model):
        s_hot = stats("mcf")   # memory bound -> busy L2
        s_cold = stats("gzip")
        assert model.l2_bank_power(s_hot).mean() > model.l2_bank_power(s_cold).mean()

    def test_xbar_power_bounds(self, model):
        low = model.xbar_power(np.zeros(5))
        high = model.xbar_power(np.ones(5))
        assert np.all(low < high)
        assert np.all(high <= 2.75 + 1e-9)


class TestDVFSScaling:
    def test_cubic_dynamic(self):
        assert dynamic_power_scale(1.0) == 1.0
        assert dynamic_power_scale(0.5) == pytest.approx(0.125)
        assert dynamic_power_scale(0.0) == 0.0

    def test_quadratic_leakage(self):
        assert leakage_voltage_scale(0.5) == pytest.approx(0.25)

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            dynamic_power_scale(1.5)
        with pytest.raises(ValueError):
            leakage_voltage_scale(-0.1)

    def test_cubic_beats_linear_work_tradeoff(self):
        """The DVFS advantage: at half speed, work halves but power drops
        to an eighth — the asymmetry behind the paper's 2.5X result."""
        s = 0.5
        work_ratio = s
        power_ratio = dynamic_power_scale(s)
        assert power_ratio < work_ratio ** 2
