"""Tests for the cache models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.caches import (
    CacheHierarchy,
    SetAssociativeCache,
    WorkingSetAddressGenerator,
    memory_stall_cpi,
)
from repro.uarch.config import CacheConfig, MachineConfig
from repro.util.rng import RngStream


def small_cache(size=1024, assoc=2, block=64):
    return SetAssociativeCache(CacheConfig(size, assoc, block, 1))


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert not c.access(0x100)
        assert c.access(0x100)
        assert c.accesses == 2 and c.hits == 1

    def test_same_block_hits(self):
        c = small_cache(block=64)
        c.access(0x100)
        assert c.access(0x13F)  # same 64-byte block

    def test_lru_eviction(self):
        # 2-way cache: fill one set with 2 tags, then a third evicts the LRU.
        c = small_cache(size=256, assoc=2, block=64)  # 2 sets
        n_sets = c.config.n_sets
        stride = 64 * n_sets  # same set, different tags
        c.access(0)
        c.access(stride)
        c.access(0)            # make tag0 MRU
        c.access(2 * stride)   # evicts tag1 (LRU)
        assert c.access(0)     # still present
        assert not c.access(stride)  # evicted

    def test_working_set_fits_all_hits(self):
        c = small_cache(size=4096, assoc=4, block=64)
        addresses = list(range(0, 2048, 64))
        for a in addresses:
            c.access(a)
        c.reset_counters()
        for _ in range(3):
            for a in addresses:
                assert c.access(a)
        assert c.miss_rate == 0.0

    def test_flush(self):
        c = small_cache()
        c.access(0x100)
        c.flush()
        assert not c.access(0x100)

    def test_miss_rate_zero_before_accesses(self):
        assert small_cache().miss_rate == 0.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=200))
    def test_counters_consistent_property(self, n):
        c = small_cache()
        rng = RngStream(n, "cache")
        for _ in range(n):
            c.access(int(rng.integers(0, 1 << 20)))
        assert c.accesses == n
        assert 0 <= c.hits <= n
        assert c.misses == n - c.hits


class TestCacheHierarchy:
    def test_l1_hit_latency(self):
        h = CacheHierarchy(MachineConfig())
        h.access(0x1000)  # cold
        result = h.access(0x1000)
        assert result.level == "l1"
        assert result.latency_cycles == 1

    def test_miss_path_latencies(self):
        h = CacheHierarchy(MachineConfig())
        first = h.access(0x2000)
        assert first.level == "memory"
        assert first.latency_cycles == 100

    def test_l2_capacity_limited_to_quarter(self):
        """The paper capacity-limits single-thread runs to 1/4 of the L2."""
        cfg = MachineConfig()
        h = CacheHierarchy(cfg, l2_share=0.25)
        assert h.l2.config.size_bytes == cfg.l2.size_bytes // 4

    def test_full_share(self):
        cfg = MachineConfig()
        h = CacheHierarchy(cfg, l2_share=1.0)
        assert h.l2.config.size_bytes == cfg.l2.size_bytes

    def test_bad_share_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(MachineConfig(), l2_share=0.0)

    def test_flush_invalidates_both_levels(self):
        h = CacheHierarchy(MachineConfig())
        h.access(0x3000)
        h.access(0x3000)
        h.flush()
        assert h.access(0x3000).level == "memory"


class TestMemoryStallCpi:
    def test_zero_misses_zero_stall(self):
        assert memory_stall_cpi(0.0, 0.0, MachineConfig()) == 0.0

    def test_l2_misses_cost_more_than_l1(self):
        cfg = MachineConfig()
        l1_only = memory_stall_cpi(10.0, 0.0, cfg)
        l2_heavy = memory_stall_cpi(10.0, 10.0, cfg)
        assert l2_heavy > l1_only

    def test_mcf_like_stall_dominates(self):
        """mcf-like miss rates push CPI up by multiple cycles/inst."""
        cfg = MachineConfig()
        stall = memory_stall_cpi(40.0, 12.0, cfg)
        assert stall > 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            memory_stall_cpi(-1.0, 0.0, MachineConfig())


class TestWorkingSetGenerator:
    def test_sequential_mode_strides(self):
        gen = WorkingSetAddressGenerator(
            1024, random_fraction=0.0, stride_bytes=8, rng=RngStream(0, "a")
        )
        a1, a2 = gen.next_address(), gen.next_address()
        assert a2 - a1 == 8

    def test_wraps_within_working_set(self):
        gen = WorkingSetAddressGenerator(
            64, random_fraction=0.0, stride_bytes=8, rng=RngStream(0, "a")
        )
        for _ in range(100):
            assert 0 <= gen.next_address() < 64

    def test_larger_working_set_more_misses(self):
        """Directional behaviour used to map profiles to address streams."""
        def miss_rate(ws_bytes):
            cache = small_cache(size=4096, assoc=2, block=64)
            gen = WorkingSetAddressGenerator(
                ws_bytes, random_fraction=0.5, rng=RngStream(3, str(ws_bytes))
            )
            for _ in range(4000):
                cache.access(gen.next_address())
            return cache.miss_rate

        assert miss_rate(512 * 1024) > miss_rate(2 * 1024) + 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkingSetAddressGenerator(0, 0.5)
        with pytest.raises(ValueError):
            WorkingSetAddressGenerator(1024, 1.5)
