"""Tests for the vectorised interval engine."""

import numpy as np
import pytest

from repro.uarch.benchmarks import get_benchmark
from repro.uarch.config import MachineConfig
from repro.uarch.interval_model import (
    MAX_ACTIVITY,
    UNIT_CAPACITY,
    UNIT_ORDER,
    simulate_intervals,
)
from repro.util.rng import RngStream


def stats_for(name, n=500, seed=0):
    return simulate_intervals(
        get_benchmark(name), MachineConfig(), n, RngStream(seed, "iv", name)
    )


class TestShapesAndBounds:
    def test_shapes(self):
        s = stats_for("gzip", n=123)
        assert s.instructions.shape == (123,)
        assert s.unit_activity.shape == (123, len(UNIT_ORDER))
        assert s.l2_activity.shape == (123,)
        assert s.n_intervals == 123

    def test_activity_in_unit_interval(self):
        s = stats_for("sixtrack")
        assert np.all(s.unit_activity >= 0.0)
        assert np.all(s.unit_activity <= MAX_ACTIVITY)
        assert np.all(s.l2_activity <= MAX_ACTIVITY)

    def test_instructions_positive_and_bounded(self):
        cfg = MachineConfig()
        s = stats_for("gzip")
        assert np.all(s.instructions > 0)
        assert np.all(
            s.instructions <= cfg.core.issue_width * cfg.trace_sample_cycles
        )

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            stats_for("gzip", n=0)

    def test_unit_index(self):
        s = stats_for("gzip", n=10)
        assert s.unit_index("intreg") == UNIT_ORDER.index("intreg")
        with pytest.raises(KeyError):
            s.unit_index("alu9000")


class TestMeanBehaviour:
    def test_mean_ipc_tracks_profile(self):
        for name in ("gzip", "mcf", "swim"):
            profile = get_benchmark(name)
            s = stats_for(name)
            assert s.mean_ipc == pytest.approx(profile.base_ipc, rel=0.12)

    def test_counters_proportional_to_instructions(self):
        s = stats_for("gzip")
        profile = get_benchmark("gzip")
        ratio = s.int_rf_accesses / s.instructions
        np.testing.assert_allclose(
            ratio, profile.int_rf_accesses_per_instruction, rtol=1e-9
        )

    def test_oscillator_varies_more_than_stable(self):
        stable = stats_for("gzip")
        osc = stats_for("ammp")
        cv_stable = stable.instructions.std() / stable.instructions.mean()
        cv_osc = osc.instructions.std() / osc.instructions.mean()
        assert cv_osc > 2 * cv_stable


class TestCrossBenchmarkStructure:
    def test_int_program_stresses_intreg(self):
        s = stats_for("gzip")
        i_int = s.unit_index("intreg")
        i_fp = s.unit_index("fpreg")
        assert s.unit_activity[:, i_int].mean() > 4 * s.unit_activity[:, i_fp].mean()

    def test_fp_program_stresses_fpreg(self):
        s = stats_for("sixtrack")
        i_int = s.unit_index("intreg")
        i_fp = s.unit_index("fpreg")
        assert s.unit_activity[:, i_fp].mean() > s.unit_activity[:, i_int].mean()

    def test_memory_bound_has_high_l2_activity(self):
        assert stats_for("mcf").l2_activity.mean() > stats_for("gzip").l2_activity.mean()

    def test_determinism(self):
        a = stats_for("gcc", seed=5)
        b = stats_for("gcc", seed=5)
        np.testing.assert_array_equal(a.instructions, b.instructions)
        np.testing.assert_array_equal(a.unit_activity, b.unit_activity)


class TestCapacities:
    def test_every_unit_has_capacity(self):
        for u in UNIT_ORDER:
            assert UNIT_CAPACITY[u] > 0
