"""Tests for instruction classes and mixes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.uarch.isa import (
    EXECUTION_LATENCY,
    FP_RF_ACCESSES,
    INT_RF_ACCESSES,
    InstructionClass,
    InstructionMix,
    floating_point_mix,
    integer_mix,
)


class TestTables:
    def test_every_class_has_latency_and_rf_costs(self):
        for icls in InstructionClass:
            assert icls in EXECUTION_LATENCY
            assert icls in INT_RF_ACCESSES
            assert icls in FP_RF_ACCESSES

    def test_long_latency_ops(self):
        assert EXECUTION_LATENCY[InstructionClass.INT_MUL] > EXECUTION_LATENCY[
            InstructionClass.INT_ALU
        ]
        assert EXECUTION_LATENCY[InstructionClass.FP_MUL] > 1

    def test_rf_access_separation(self):
        """Int ops touch the int RF, FP ops the FP RF — the asymmetry the
        whole migration story rests on."""
        assert INT_RF_ACCESSES[InstructionClass.INT_ALU] > 0
        assert FP_RF_ACCESSES[InstructionClass.INT_ALU] == 0
        assert FP_RF_ACCESSES[InstructionClass.FP_ALU] > 0
        assert INT_RF_ACCESSES[InstructionClass.FP_ALU] == 0


class TestInstructionMix:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            InstructionMix.from_dict({InstructionClass.INT_ALU: 0.5})

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            InstructionMix.from_dict(
                {InstructionClass.INT_ALU: 1.5, InstructionClass.LOAD: -0.5}
            )

    def test_duplicate_class_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            InstructionMix(
                (
                    (InstructionClass.INT_ALU, 0.5),
                    (InstructionClass.INT_ALU, 0.5),
                )
            )

    def test_fraction_lookup(self):
        mix = integer_mix()
        assert mix.fraction(InstructionClass.LOAD) == pytest.approx(0.22)
        assert mix.fraction(InstructionClass.FP_ALU) == 0.0

    def test_aggregates(self):
        mix = integer_mix(load=0.2, store=0.1, branch=0.15)
        assert mix.load_store_fraction == pytest.approx(0.3)
        assert mix.branch_fraction == pytest.approx(0.15)
        assert mix.fp_fraction == 0.0

    def test_rf_access_expectations(self):
        mix = floating_point_mix()
        assert mix.fp_rf_accesses_per_instruction() > 0
        assert mix.int_rf_accesses_per_instruction() > 0  # loads/branches

    def test_int_mix_more_int_intensive_than_fp_mix(self):
        assert (
            integer_mix().int_rf_accesses_per_instruction()
            > floating_point_mix().int_rf_accesses_per_instruction()
        )
        assert (
            floating_point_mix().fp_rf_accesses_per_instruction()
            > integer_mix().fp_rf_accesses_per_instruction()
        )


class TestMixBuilders:
    def test_integer_mix_sums(self):
        mix = integer_mix()
        assert sum(f for _c, f in mix) == pytest.approx(1.0)

    def test_fp_mix_sums(self):
        mix = floating_point_mix()
        assert sum(f for _c, f in mix) == pytest.approx(1.0)

    def test_fp_mix_rejects_overflow(self):
        with pytest.raises(ValueError):
            floating_point_mix(fp=0.8, load=0.3, store=0.2, branch=0.2)

    @given(
        st.floats(min_value=0.0, max_value=0.3),
        st.floats(min_value=0.0, max_value=0.2),
        st.floats(min_value=0.0, max_value=0.25),
    )
    def test_integer_mix_always_valid_property(self, load, store, branch):
        mix = integer_mix(load=load, store=store, branch=branch, int_mul=0.02)
        assert sum(f for _c, f in mix) == pytest.approx(1.0)
        assert all(f >= 0 for _c, f in mix)

    @given(
        st.floats(min_value=0.05, max_value=0.5),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_fp_mix_split_property(self, fp, mul_share):
        mix = floating_point_mix(fp=fp, fp_mul_share=mul_share)
        assert mix.fp_fraction == pytest.approx(fp)
