"""Property-based tests over trace generation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.benchmarks import ALL_BENCHMARKS, get_benchmark
from repro.uarch.config import MachineConfig
from repro.uarch.tracegen import generate_trace

NAMES = sorted(ALL_BENCHMARKS)


@settings(max_examples=15, deadline=None)
@given(
    name=st.sampled_from(NAMES),
    seed=st.integers(min_value=0, max_value=2 ** 31),
)
def test_trace_physicality(name, seed):
    """Any benchmark/seed produces a physically sensible trace."""
    trace = generate_trace(name, duration_s=0.003, seed=seed, use_cache=False)
    assert np.all(trace.unit_power >= 0)
    assert np.all(np.isfinite(trace.unit_power))
    assert np.all(trace.instructions > 0)
    assert np.all(trace.l2_activity >= 0)
    assert np.all(trace.l2_activity <= 1.0)
    cfg = MachineConfig()
    assert np.all(
        trace.instructions <= cfg.core.issue_width * cfg.trace_sample_cycles
    )


@settings(max_examples=15, deadline=None)
@given(
    name=st.sampled_from(NAMES),
    position=st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
)
def test_circular_indexing_property(name, position):
    """Any position maps into the trace; wrapping is exact modular."""
    trace = generate_trace(name, duration_s=0.003)
    idx = trace.sample_index(position)
    assert 0 <= idx < trace.n_samples
    assert idx == trace.sample_index(position + trace.n_samples)


@settings(max_examples=10, deadline=None)
@given(name=st.sampled_from(NAMES))
def test_counters_scale_with_instructions(name):
    """Register-file access counts are exact multiples of instruction
    counts (the per-instruction rate is a profile constant)."""
    trace = generate_trace(name, duration_s=0.003)
    profile = get_benchmark(name)
    np.testing.assert_allclose(
        trace.int_rf_accesses,
        trace.instructions * profile.int_rf_accesses_per_instruction,
        rtol=1e-9,
    )
    np.testing.assert_allclose(
        trace.fp_rf_accesses,
        trace.instructions * profile.fp_rf_accesses_per_instruction,
        rtol=1e-9,
    )


def test_all_22_benchmarks_generate():
    """Every registered profile produces a valid short trace."""
    for name in NAMES:
        trace = generate_trace(name, duration_s=0.002)
        assert trace.n_samples > 0
        assert trace.mean_core_power_w > 1.0, name
