"""Tests for trace persistence."""

import numpy as np
import pytest

from repro.uarch.trace_io import FORMAT_VERSION, load_trace, save_trace
from repro.uarch.tracegen import generate_trace


@pytest.fixture()
def trace():
    return generate_trace("gzip", duration_s=0.005)


class TestRoundTrip:
    def test_exact_roundtrip(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "gzip.npz")
        loaded = load_trace(path)
        assert loaded.benchmark == trace.benchmark
        assert loaded.sample_period_s == trace.sample_period_s
        assert loaded.sample_cycles == trace.sample_cycles
        np.testing.assert_array_equal(loaded.unit_power, trace.unit_power)
        np.testing.assert_array_equal(loaded.instructions, trace.instructions)
        np.testing.assert_array_equal(loaded.l2_activity, trace.l2_activity)
        np.testing.assert_array_equal(
            loaded.int_rf_accesses, trace.int_rf_accesses
        )

    def test_suffix_appended(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "gzip")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_loaded_trace_is_functional(self, trace, tmp_path):
        loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
        assert loaded.nominal_bips == pytest.approx(trace.nominal_bips)
        assert loaded.sample_index(loaded.n_samples + 2.0) == 2


class TestVersioning:
    def test_version_mismatch_rejected(self, trace, tmp_path):
        import json

        import numpy as np

        path = save_trace(trace, tmp_path / "t.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(bytes(arrays["meta"]).decode())
        meta["format_version"] = FORMAT_VERSION + 1
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="format version"):
            load_trace(path)

    def test_unit_order_mismatch_rejected(self, trace, tmp_path):
        import json

        import numpy as np

        path = save_trace(trace, tmp_path / "t.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(bytes(arrays["meta"]).decode())
        meta["unit_order"] = list(reversed(meta["unit_order"]))
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="unit order"):
            load_trace(path)
