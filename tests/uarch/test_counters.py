"""Tests for per-thread performance counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.uarch.counters import PerformanceCounters


class TestAccumulation:
    def test_basic_update(self):
        c = PerformanceCounters()
        c.update(1000, 2500, 100, nominal_cycles=500, frequency_scale=1.0)
        assert c.instructions == 1000
        assert c.adjusted_cycles == 500

    def test_frequency_scaling_of_cycles(self):
        """A window at 50% frequency contributes half the adjusted cycles —
        the normalisation counter-based migration depends on."""
        c = PerformanceCounters()
        c.update(100, 200, 0, nominal_cycles=1000, frequency_scale=0.5)
        assert c.cycles == 1000
        assert c.adjusted_cycles == 500

    def test_rates(self):
        c = PerformanceCounters()
        c.update(1000, 3000, 500, nominal_cycles=2000, frequency_scale=1.0)
        assert c.int_rf_per_adjusted_cycle == pytest.approx(1.5)
        assert c.fp_rf_per_adjusted_cycle == pytest.approx(0.25)
        assert c.ipc == pytest.approx(0.5)

    def test_rate_invariant_under_throttling(self):
        """Accesses-per-adjusted-cycle should characterise the *thread*,
        not the frequency it happened to run at."""
        full = PerformanceCounters()
        full.update(1000, 3000, 0, nominal_cycles=1000, frequency_scale=1.0)
        # Same thread at 40% speed retires 40% of everything per wall cycle.
        slow = PerformanceCounters()
        slow.update(400, 1200, 0, nominal_cycles=1000, frequency_scale=0.4)
        assert slow.int_rf_per_adjusted_cycle == pytest.approx(
            full.int_rf_per_adjusted_cycle
        )

    def test_zero_cycles_safe(self):
        c = PerformanceCounters()
        assert c.ipc == 0.0
        assert c.int_rf_per_adjusted_cycle == 0.0

    def test_validation(self):
        c = PerformanceCounters()
        with pytest.raises(ValueError):
            c.update(1, 1, 1, nominal_cycles=-1, frequency_scale=1.0)
        with pytest.raises(ValueError):
            c.update(1, 1, 1, nominal_cycles=1, frequency_scale=1.5)


class TestIntensity:
    def test_intensity_for_hotspots(self):
        c = PerformanceCounters()
        c.update(1000, 3000, 600, nominal_cycles=1000, frequency_scale=1.0)
        assert c.intensity_for("intreg") == pytest.approx(3.0)
        assert c.intensity_for("fpreg") == pytest.approx(0.6)

    def test_intensity_fallback_is_ipc(self):
        c = PerformanceCounters()
        c.update(1000, 3000, 600, nominal_cycles=2000, frequency_scale=1.0)
        assert c.intensity_for("dcache") == pytest.approx(c.ipc)


class TestLifecycle:
    def test_reset(self):
        c = PerformanceCounters()
        c.update(10, 20, 5, nominal_cycles=50, frequency_scale=1.0)
        c.reset()
        assert c.instructions == 0 and c.adjusted_cycles == 0

    def test_copy_is_independent(self):
        c = PerformanceCounters()
        c.update(10, 20, 5, nominal_cycles=50, frequency_scale=1.0)
        snap = c.copy()
        c.update(10, 20, 5, nominal_cycles=50, frequency_scale=1.0)
        assert snap.instructions == 10
        assert c.instructions == 20


@given(
    windows=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e6),   # instructions
            st.floats(min_value=0, max_value=1e6),   # int rf
            st.floats(min_value=0, max_value=1e6),   # fp rf
            st.floats(min_value=0, max_value=1e6),   # cycles
            st.floats(min_value=0.0, max_value=1.0),  # scale
        ),
        max_size=30,
    )
)
def test_totals_are_sums_property(windows):
    c = PerformanceCounters()
    for instr, irf, frf, cyc, s in windows:
        c.update(instr, irf, frf, nominal_cycles=cyc, frequency_scale=s)
    assert c.instructions == pytest.approx(sum(w[0] for w in windows))
    assert c.adjusted_cycles <= c.cycles + 1e-9
