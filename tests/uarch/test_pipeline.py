"""Tests for the cycle-level out-of-order core model."""

import pytest

from repro.uarch.benchmarks import get_benchmark
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import COUNTED_UNITS, OutOfOrderCore, SyntheticProgram
from repro.util.rng import RngStream


def run_core(name, cycles=20_000, seed=0):
    core = OutOfOrderCore(get_benchmark(name), MachineConfig(), seed=seed)
    return core.run(cycles)


class TestBasicExecution:
    def test_retires_instructions(self):
        stats = run_core("gzip", cycles=5_000)
        assert stats.instructions > 0
        assert stats.cycles == 5_000

    def test_ipc_bounded_by_machine_width(self):
        stats = run_core("gzip")
        assert 0 < stats.ipc <= MachineConfig().core.retire_width

    def test_run_instructions_mode(self):
        core = OutOfOrderCore(get_benchmark("crafty"), seed=1)
        stats = core.run_instructions(2_000)
        assert stats.instructions >= 2_000

    def test_rejects_bad_args(self):
        core = OutOfOrderCore(get_benchmark("gzip"))
        with pytest.raises(ValueError):
            core.run(0)
        with pytest.raises(ValueError):
            core.run_instructions(-5)

    def test_deterministic_given_seed(self):
        a = run_core("parser", cycles=5_000, seed=3)
        b = run_core("parser", cycles=5_000, seed=3)
        assert a.instructions == b.instructions
        assert a.unit_accesses == b.unit_accesses

    def test_seeds_differ(self):
        a = run_core("parser", cycles=5_000, seed=3)
        b = run_core("parser", cycles=5_000, seed=4)
        assert a.instructions != b.instructions


class TestWorkloadContrast:
    """The pipeline must reproduce the cross-benchmark structure the
    interval engine assumes."""

    def test_memory_bound_mcf_has_low_ipc(self):
        gzip = run_core("gzip")
        mcf = run_core("mcf")
        assert mcf.ipc < gzip.ipc * 0.65

    def test_mcf_misses_more(self):
        gzip = run_core("gzip")
        mcf = run_core("mcf")
        assert mcf.l1d_mpki > gzip.l1d_mpki

    def test_int_program_exercises_int_rf(self):
        stats = run_core("gzip")
        assert stats.accesses_per_kinst("intreg") > 5 * stats.accesses_per_kinst(
            "fpreg"
        )

    def test_fp_program_exercises_fp_rf(self):
        stats = run_core("sixtrack")
        assert stats.accesses_per_kinst("fpreg") > stats.accesses_per_kinst(
            "intreg"
        ) / 2
        assert stats.unit_accesses["fpu"] > 0

    def test_int_program_leaves_fpu_idle(self):
        stats = run_core("gzip")
        assert stats.unit_accesses["fpu"] == 0


class TestStructuralAccounting:
    def test_all_counted_units_present(self):
        stats = run_core("gcc", cycles=5_000)
        assert set(stats.unit_accesses) == set(COUNTED_UNITS)

    def test_issued_equals_queue_inserts(self):
        stats = run_core("gcc", cycles=5_000)
        issued = (
            stats.unit_accesses["fxu"]
            + stats.unit_accesses["fpu"]
            + stats.unit_accesses["lsu"]
            + stats.unit_accesses["bxu"]
        )
        assert issued == pytest.approx(stats.unit_accesses["iq"])

    def test_memory_ops_touch_dcache(self):
        stats = run_core("gcc", cycles=5_000)
        assert stats.unit_accesses["dcache"] == pytest.approx(
            stats.unit_accesses["lsu"]
        )

    def test_retired_never_exceeds_dispatched(self):
        stats = run_core("gcc", cycles=5_000)
        assert stats.instructions <= stats.unit_accesses["decode"]


class TestSyntheticProgram:
    def test_mix_sampling_matches_fractions(self):
        profile = get_benchmark("gzip")
        prog = SyntheticProgram(profile, RngStream(0, "p"))
        from collections import Counter

        counts = Counter(prog.next_class() for _ in range(20_000))
        for icls, frac in profile.mix:
            observed = counts[icls] / 20_000
            assert observed == pytest.approx(frac, abs=0.02)

    def test_dependence_distance_positive(self):
        prog = SyntheticProgram(get_benchmark("gzip"), RngStream(0, "p"))
        distances = [prog.dependence_distance() for _ in range(1000)]
        assert min(distances) >= 1

    def test_higher_ipc_profile_longer_dependences(self):
        hi = SyntheticProgram(get_benchmark("gzip"), RngStream(0, "p"))
        lo = SyntheticProgram(get_benchmark("mcf"), RngStream(0, "p"))
        hi_mean = sum(hi.dependence_distance() for _ in range(3000)) / 3000
        lo_mean = sum(lo.dependence_distance() for _ in range(3000)) / 3000
        assert hi_mean > lo_mean
