"""Tests for trace generation and caching."""

import numpy as np
import pytest

from repro.uarch.benchmarks import get_benchmark
from repro.uarch.config import MachineConfig
from repro.uarch.tracegen import clear_trace_cache, generate_trace


class TestGeneration:
    def test_basic_trace(self):
        t = generate_trace("gzip", duration_s=0.01)
        cfg = MachineConfig()
        assert t.benchmark == "gzip"
        assert t.sample_period_s == pytest.approx(cfg.sample_period_s)
        assert t.n_samples == pytest.approx(0.01 / cfg.sample_period_s, abs=1)

    def test_accepts_profile_object(self):
        t = generate_trace(get_benchmark("mcf"), duration_s=0.01)
        assert t.benchmark == "mcf"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            generate_trace("quake3", duration_s=0.01)

    def test_bad_duration_rejected(self):
        with pytest.raises(ValueError):
            generate_trace("gzip", duration_s=0.0)

    def test_deterministic(self):
        a = generate_trace("gcc", duration_s=0.01, seed=11, use_cache=False)
        b = generate_trace("gcc", duration_s=0.01, seed=11, use_cache=False)
        np.testing.assert_array_equal(a.unit_power, b.unit_power)

    def test_seed_changes_trace(self):
        a = generate_trace("gcc", duration_s=0.01, seed=11, use_cache=False)
        b = generate_trace("gcc", duration_s=0.01, seed=12, use_cache=False)
        assert not np.array_equal(a.unit_power, b.unit_power)

    def test_power_scale(self):
        a = generate_trace("gcc", duration_s=0.01, use_cache=False)
        b = generate_trace("gcc", duration_s=0.01, power_scale=2.0, use_cache=False)
        np.testing.assert_allclose(b.unit_power, 2.0 * a.unit_power, rtol=1e-12)
        # Counters are performance data: power scaling must not touch them.
        np.testing.assert_array_equal(b.instructions, a.instructions)

    def test_nominal_bips_tracks_profile(self):
        cfg = MachineConfig()
        for name in ("gzip", "mcf"):
            t = generate_trace(name, duration_s=0.02, use_cache=False)
            expected = get_benchmark(name).base_ipc * cfg.clock_hz / 1e9
            assert t.nominal_bips == pytest.approx(expected, rel=0.12)


class TestCache:
    def test_cache_returns_same_object(self):
        clear_trace_cache()
        a = generate_trace("vpr", duration_s=0.005)
        b = generate_trace("vpr", duration_s=0.005)
        assert a is b

    def test_cache_key_includes_duration(self):
        a = generate_trace("vpr", duration_s=0.005)
        b = generate_trace("vpr", duration_s=0.006)
        assert a is not b

    def test_no_cache_flag(self):
        a = generate_trace("vpr", duration_s=0.005)
        b = generate_trace("vpr", duration_s=0.005, use_cache=False)
        assert a is not b

    def test_clear_reports_count(self):
        clear_trace_cache()
        generate_trace("vpr", duration_s=0.005)
        assert clear_trace_cache() >= 1
