"""Tests for the power-trace container."""

import numpy as np
import pytest

from repro.uarch.interval_model import UNIT_ORDER
from repro.uarch.trace import PowerTrace


def make_trace(n=10):
    return PowerTrace(
        benchmark="toy",
        sample_period_s=28e-6,
        sample_cycles=100_000,
        unit_power=np.arange(n * len(UNIT_ORDER), dtype=float).reshape(
            n, len(UNIT_ORDER)
        ),
        l2_activity=np.linspace(0, 1, n),
        instructions=np.full(n, 150_000.0),
        int_rf_accesses=np.full(n, 300_000.0),
        fp_rf_accesses=np.full(n, 50_000.0),
    )


class TestValidation:
    def test_shape_checks(self):
        with pytest.raises(ValueError):
            PowerTrace(
                benchmark="bad",
                sample_period_s=1e-5,
                sample_cycles=1,
                unit_power=np.zeros((5, 3)),  # wrong unit count
                l2_activity=np.zeros(5),
                instructions=np.zeros(5),
                int_rf_accesses=np.zeros(5),
                fp_rf_accesses=np.zeros(5),
            )

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PowerTrace(
                benchmark="bad",
                sample_period_s=1e-5,
                sample_cycles=1,
                unit_power=np.zeros((5, len(UNIT_ORDER))),
                l2_activity=np.zeros(4),
                instructions=np.zeros(5),
                int_rf_accesses=np.zeros(5),
                fp_rf_accesses=np.zeros(5),
            )

    def test_bad_period(self):
        with pytest.raises(ValueError):
            PowerTrace(
                benchmark="bad",
                sample_period_s=0.0,
                sample_cycles=1,
                unit_power=np.zeros((5, len(UNIT_ORDER))),
                l2_activity=np.zeros(5),
                instructions=np.zeros(5),
                int_rf_accesses=np.zeros(5),
                fp_rf_accesses=np.zeros(5),
            )


class TestIndexing:
    def test_duration(self):
        t = make_trace(10)
        assert t.n_samples == 10
        assert t.duration_s == pytest.approx(10 * 28e-6)

    def test_circular_replay(self):
        """Traces restart at the beginning when exhausted (Section 3.3)."""
        t = make_trace(10)
        assert t.sample_index(0.5) == 0
        assert t.sample_index(9.9) == 9
        assert t.sample_index(10.1) == 0  # wrapped
        assert t.sample_index(25.0) == 5

    def test_power_lookup_wraps(self):
        t = make_trace(10)
        np.testing.assert_array_equal(
            t.unit_power_at(3.0), t.unit_power_at(13.0)
        )

    def test_counters_at(self):
        t = make_trace()
        c = t.counters_at(2.5)
        assert c["instructions"] == 150_000.0
        assert c["int_rf_accesses"] == 300_000.0


class TestSummaries:
    def test_nominal_bips(self):
        t = make_trace(10)
        # 150k instructions per 28us sample.
        expected = 150_000.0 / 28e-6 / 1e9
        assert t.nominal_bips == pytest.approx(expected, rel=1e-6)

    def test_mean_power(self):
        t = make_trace(4)
        assert t.mean_core_power_w == pytest.approx(
            float(t.unit_power.sum(axis=1).mean())
        )

    def test_mean_unit_power(self):
        t = make_trace(4)
        assert t.mean_unit_power("icache") == pytest.approx(
            float(t.unit_power[:, 0].mean())
        )
