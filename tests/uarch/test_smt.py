"""Tests for the SMT workload-merge model."""

import pytest

from repro.uarch.benchmarks import get_benchmark
from repro.uarch.smt import (
    SMT_EFFICIENCY,
    SMT_IPC_CAP,
    merge_profiles,
    smt_speedup,
)


@pytest.fixture(scope="module")
def pair():
    return get_benchmark("gzip"), get_benchmark("swim")


class TestThroughput:
    def test_pair_outruns_either_thread(self, pair):
        a, b = pair
        merged = merge_profiles(a, b)
        assert merged.base_ipc > max(a.base_ipc, b.base_ipc)

    def test_pair_below_sum(self, pair):
        a, b = pair
        merged = merge_profiles(a, b)
        assert merged.base_ipc < a.base_ipc + b.base_ipc

    def test_efficiency_model(self, pair):
        a, b = pair
        merged = merge_profiles(a, b)
        expected = min(SMT_IPC_CAP, (a.base_ipc + b.base_ipc) * SMT_EFFICIENCY)
        assert merged.base_ipc == pytest.approx(expected)

    def test_cap_binds_for_hot_pair(self):
        # At perfect sharing efficiency the fetch-path cap becomes the
        # limiter for a hot pair (1.9 + 1.9 = 3.8 > 3.2).
        a, b = get_benchmark("gzip"), get_benchmark("sixtrack")
        merged = merge_profiles(a, b, efficiency=1.0)
        assert merged.base_ipc == pytest.approx(SMT_IPC_CAP)

    def test_speedup_over_timeslicing(self, pair):
        # SMT must beat running the two threads alternately on one core.
        assert smt_speedup(*pair) > 1.0

    def test_bad_efficiency_rejected(self, pair):
        with pytest.raises(ValueError):
            merge_profiles(*pair, efficiency=0.0)


class TestResourceBlending:
    def test_both_register_files_pressured(self):
        """The SMT thermal hazard: an int+fp pair stresses both RFs."""
        merged = merge_profiles(get_benchmark("gzip"), get_benchmark("sixtrack"))
        gzip = get_benchmark("gzip")
        sixtrack = get_benchmark("sixtrack")
        assert (
            merged.int_rf_accesses_per_instruction
            > sixtrack.int_rf_accesses_per_instruction
        )
        assert (
            merged.fp_rf_accesses_per_instruction
            > gzip.fp_rf_accesses_per_instruction
        )

    def test_per_instruction_rates_are_blends(self, pair):
        a, b = pair
        merged = merge_profiles(a, b)
        lo = min(a.int_rf_accesses_per_instruction, b.int_rf_accesses_per_instruction)
        hi = max(a.int_rf_accesses_per_instruction, b.int_rf_accesses_per_instruction)
        assert lo <= merged.int_rf_accesses_per_instruction <= hi

    def test_mix_is_valid(self, pair):
        merged = merge_profiles(*pair)
        assert sum(f for _c, f in merged.mix) == pytest.approx(1.0)

    def test_cache_contention_bump(self, pair):
        a, b = pair
        merged = merge_profiles(a, b)
        weight_a = a.base_ipc / (a.base_ipc + b.base_ipc)
        blended = weight_a * a.l1d_mpki + (1 - weight_a) * b.l1d_mpki
        assert merged.l1d_mpki > blended


class TestMetadata:
    def test_name_composition(self, pair):
        assert merge_profiles(*pair).name == "gzip+swim"
        assert merge_profiles(*pair, name="pair0").name == "pair0"

    def test_phase_damped(self):
        ammp = get_benchmark("ammp")
        gzip = get_benchmark("gzip")
        merged = merge_profiles(gzip, ammp)
        assert merged.phase.amplitude < ammp.phase.amplitude

    def test_merged_profile_generates_traces(self, pair):
        from repro.uarch.tracegen import generate_trace

        merged = merge_profiles(*pair)
        trace = generate_trace(merged, duration_s=0.005, use_cache=False)
        assert trace.benchmark == "gzip+swim"
        assert trace.mean_core_power_w > 0
