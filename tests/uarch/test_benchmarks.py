"""Tests for the 22 benchmark profiles and their paper-derived calibration."""

import pytest

from repro.uarch.benchmarks import (
    ALL_BENCHMARKS,
    SPECFP_BENCHMARKS,
    SPECINT_BENCHMARKS,
    BenchmarkProfile,
    get_benchmark,
    oscillating_benchmarks,
    specfp_benchmarks,
    specint_benchmarks,
)
from repro.uarch.isa import integer_mix
from repro.uarch.phases import stable_phase


class TestSuiteComposition:
    def test_eleven_plus_eleven(self):
        """The paper: "22 benchmarks including 11 SPECint ... 11 SPECfp"."""
        assert len(SPECINT_BENCHMARKS) == 11
        assert len(SPECFP_BENCHMARKS) == 11
        assert len(ALL_BENCHMARKS) == 22

    def test_suites_tagged_consistently(self):
        for b in specint_benchmarks():
            assert b.suite == "int"
        for b in specfp_benchmarks():
            assert b.suite == "fp"

    def test_all_workload_programs_exist(self):
        needed = {
            "gcc", "gzip", "mcf", "vpr", "crafty", "eon", "parser",
            "perlbmk", "bzip2", "twolf", "swim", "mgrid", "applu", "mesa",
            "art", "facerec", "ammp", "lucas", "fma3d", "sixtrack",
        }
        assert needed <= set(ALL_BENCHMARKS)

    def test_lookup_by_name(self):
        assert get_benchmark("gzip").name == "gzip"
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("doom3")


class TestPaperCalibration:
    """Cross-benchmark relations the paper states explicitly."""

    def test_mcf_is_by_far_the_coolest(self):
        """mcf's low IPC under a small L2 keeps it cool (Section 2.1)."""
        mcf = get_benchmark("mcf")
        others = [b for b in ALL_BENCHMARKS.values() if b.name != "mcf"]
        assert mcf.base_ipc < min(b.base_ipc for b in others)
        assert mcf.is_memory_bound

    def test_gzip_bzip2_hottest_integers(self):
        """gzip and bzip2 are the hottest integer benchmarks [9]."""
        ints = {b.name: b for b in SPECINT_BENCHMARKS}
        hot = {"gzip", "bzip2"}
        intensity = {
            n: b.base_ipc * b.int_rf_accesses_per_instruction
            for n, b in ints.items()
        }
        top_two = sorted(intensity, key=intensity.get, reverse=True)[:2]
        assert set(top_two) == hot

    def test_sixtrack_hottest_fp(self):
        """sixtrack is one of the hottest FP benchmarks [15, 29]."""
        fps = {b.name: b for b in SPECFP_BENCHMARKS}
        intensity = {
            n: b.base_ipc * b.fp_rf_accesses_per_instruction
            for n, b in fps.items()
        }
        assert max(intensity, key=intensity.get) == "sixtrack"

    def test_oscillating_set_matches_table_1b(self):
        names = {b.name for b in oscillating_benchmarks()}
        assert names == {"bzip2", "ammp", "facerec", "fma3d"}

    def test_fp_benchmarks_still_use_integer_registers(self):
        """"all floating point benchmarks make use of integer registers to
        some extent" (Section 3.4)."""
        for b in SPECFP_BENCHMARKS:
            assert b.int_rf_accesses_per_instruction > 0.3

    def test_int_benchmarks_barely_touch_fp_rf(self):
        for b in SPECINT_BENCHMARKS:
            assert (
                b.fp_rf_accesses_per_instruction
                < b.int_rf_accesses_per_instruction / 3
            )


class TestProfileValidation:
    def _profile(self, **kw):
        base = dict(
            name="x", suite="int", base_ipc=1.0, mix=integer_mix(),
            phase=stable_phase(),
        )
        base.update(kw)
        return BenchmarkProfile(**base)

    def test_bad_suite(self):
        with pytest.raises(ValueError):
            self._profile(suite="vector")

    def test_bad_ipc(self):
        with pytest.raises(ValueError):
            self._profile(base_ipc=0.0)
        with pytest.raises(ValueError):
            self._profile(base_ipc=9.0)

    def test_negative_intensity(self):
        with pytest.raises(ValueError):
            self._profile(int_rf_intensity=-0.1)

    def test_negative_miss_rate(self):
        with pytest.raises(ValueError):
            self._profile(l1d_mpki=-1.0)
