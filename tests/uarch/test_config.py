"""Tests for the Table 3 machine configuration."""

import pytest

from repro.uarch.config import (
    CacheConfig,
    default_machine_config,
    mobile_machine_config,
)


class TestTable3Values:
    """Every number here appears in the paper's Table 3."""

    def test_global_parameters(self):
        cfg = default_machine_config()
        assert cfg.process_nm == 90
        assert cfg.vdd == pytest.approx(1.0)
        assert cfg.clock_hz == pytest.approx(3.6e9)
        assert cfg.n_cores == 4

    def test_core_resources(self):
        core = default_machine_config().core
        assert core.mem_int_queue == (2, 20)
        assert core.fp_queue == (2, 5)
        assert (core.n_fxu, core.n_fpu, core.n_lsu, core.n_bxu) == (2, 2, 2, 1)
        assert (core.gpr, core.fpr, core.spr) == (120, 108, 90)

    def test_branch_predictor(self):
        bp = default_machine_config().core.branch_predictor
        assert bp.bimodal_entries == 16 * 1024
        assert bp.gshare_entries == 16 * 1024
        assert bp.selector_entries == 16 * 1024

    def test_memory_hierarchy(self):
        cfg = default_machine_config()
        assert (cfg.l1d.size_bytes, cfg.l1d.associativity) == (32 * 1024, 2)
        assert (cfg.l1i.size_bytes, cfg.l1i.associativity) == (64 * 1024, 2)
        assert cfg.l2.size_bytes == 4 * 1024 * 1024
        assert cfg.l2.associativity == 4
        assert cfg.l2.latency_cycles == 9
        assert cfg.l1d.block_bytes == 128
        assert cfg.memory_latency_cycles == 100

    def test_dvfs_parameters(self):
        dvfs = default_machine_config().dvfs
        assert dvfs.transition_penalty_s == pytest.approx(10e-6)
        assert dvfs.min_frequency_scale == pytest.approx(0.2)
        assert dvfs.min_transition == pytest.approx(0.02)

    def test_migration_penalty(self):
        assert default_machine_config().migration_penalty_s == pytest.approx(100e-6)

    def test_minimum_frequency_is_720mhz(self):
        assert default_machine_config().min_frequency_hz == pytest.approx(720e6)


class TestDerivedQuantities:
    def test_sample_period(self):
        cfg = default_machine_config()
        assert cfg.sample_period_s == pytest.approx(100_000 / 3.6e9)
        # The paper quotes "28 us" for this quantity.
        assert cfg.sample_period_s == pytest.approx(28e-6, rel=0.01)

    def test_cycle_time(self):
        assert default_machine_config().cycle_time_s == pytest.approx(1 / 3.6e9)

    def test_issue_width(self):
        assert default_machine_config().core.issue_width == 7


class TestCacheConfig:
    def test_n_sets(self):
        c = CacheConfig(32 * 1024, 2, 128, 1)
        assert c.n_sets == 128

    def test_rejects_nondividing_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 128, 1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheConfig(0, 2, 128, 1)


class TestMobileConfig:
    def test_banias_like(self):
        cfg = mobile_machine_config()
        assert cfg.clock_hz == pytest.approx(1.5e9)
        assert cfg.n_cores == 1
        # The paper: "the Banias processor provides only 1 MB" of L2.
        assert cfg.l2.size_bytes == 1024 * 1024
