"""Engine-level telemetry guarantees: non-perturbation and fusion-awareness.

The telemetry sampler's core contract, mirrored after
``tests/sim/test_fusion.py``: attaching a sampler changes no reported
number (bit-identical metrics across the benchmark policy configs),
never blocks the fused fast path, produces the identical sampled series
whether the run fused or stepped, and never enters the result-cache key.
"""

from dataclasses import fields, replace

import numpy as np
import pytest

from repro.core.taxonomy import spec_by_key
from repro.obs.telemetry import TelemetrySampler
from repro.sim.engine import SimulationConfig, ThermalTimingSimulator
from repro.sim.runner import ParallelRunner, ResultCache, RunPoint, config_hash
from repro.sim.workloads import get_workload

W7 = get_workload("workload7")
CFG = SimulationConfig(duration_s=0.02)
PERIOD = 1e-3

#: The four policy configs from benchmarks/test_engine_speed.py.
POLICY_KEYS = [
    None,
    "distributed-stop-go-none",
    "distributed-dvfs-none",
    "distributed-dvfs-sensor",
]
POLICY_IDS = ["unthrottled", "stopgo", "dvfs", "dvfs+sensor-migration"]


def _sim(spec_key, config, **kwargs):
    spec = spec_by_key(spec_key) if spec_key else None
    return ThermalTimingSimulator(W7.benchmarks, spec, config, **kwargs)


def scalar_fields(result) -> dict:
    """Every RunResult field except the observability attachments."""
    return {
        f.name: getattr(result, f.name)
        for f in fields(result)
        if f.name not in ("series", "events", "telemetry")
    }


class TestNonPerturbation:
    @pytest.mark.parametrize("spec_key", POLICY_KEYS, ids=POLICY_IDS)
    def test_sampled_run_bit_identical(self, spec_key):
        """A sampled run reports exactly the numbers an unsampled one does."""
        plain_sim = _sim(spec_key, CFG)
        plain = plain_sim.run()
        sampled_sim = _sim(spec_key, CFG, telemetry=TelemetrySampler(PERIOD))
        sampled = sampled_sim.run()

        assert scalar_fields(plain) == scalar_fields(sampled)
        np.testing.assert_array_equal(
            plain_sim.thermal.temperatures, sampled_sim.thermal.temperatures
        )
        assert plain.telemetry is None
        assert sampled.telemetry is not None
        assert sampled.telemetry.sample_period_s == PERIOD
        assert sampled.telemetry.samples > 0

    def test_sampler_is_not_a_fusion_blocker(self):
        """The tentpole guarantee: telemetry keeps the fused fast path."""
        sim = _sim(None, CFG, telemetry=TelemetrySampler(PERIOD))
        assert sim.fusion_blockers == ()
        sim.run()
        assert sim.last_run_fused

    @pytest.mark.parametrize("spec_key", POLICY_KEYS, ids=POLICY_IDS)
    def test_fused_and_stepwise_series_identical(self, spec_key):
        """The sampled series is invariant under the fuse_steps flag."""
        sam_a = TelemetrySampler(PERIOD)
        _sim(spec_key, CFG, telemetry=sam_a).run()
        sam_b = TelemetrySampler(PERIOD)
        _sim(
            spec_key, replace(CFG, fuse_steps=False), telemetry=sam_b
        ).run()

        assert sam_a.series.times == sam_b.series.times
        assert list(sam_a.series.columns) == list(sam_b.series.columns)
        for column in sam_a.series.columns:
            assert sam_a.series.column(column) == sam_b.series.column(column)
        assert sam_a.registry.as_dict() == sam_b.registry.as_dict()

    def test_sample_count_and_instants(self):
        """t=0 plus one sample per whole-step-quantized period."""
        sam = TelemetrySampler(PERIOD)
        _sim(None, CFG, telemetry=sam).run()
        dt = CFG.machine.sample_period_s
        stride = sam.stride_steps(dt)
        n_steps = int(round(CFG.duration_s / dt))
        assert sam.samples == 1 + n_steps // stride
        assert sam.series.times[0] == 0.0
        assert sam.series.times[1] == pytest.approx(stride * dt)

    def test_sampler_single_use(self):
        sam = TelemetrySampler(PERIOD)
        _sim(None, CFG, telemetry=sam)
        with pytest.raises(ValueError, match="already bound"):
            _sim(None, CFG, telemetry=sam)


class TestCacheIndependence:
    def test_telemetry_never_in_cache_key(self):
        """Telemetry is an engine attachment, not configuration: the
        cache key of a point is the same whether or not a run that
        produced it was sampled."""
        point = RunPoint(W7, None, CFG)
        key = config_hash(point, "vtest")
        assert key == config_hash(RunPoint(W7, None, CFG), "vtest")

    def test_sampled_result_serves_unsampled_request(self, tmp_path):
        """A cache warmed by an instrumented runner hits for a plain one."""
        cache = ResultCache(tmp_path / "cache")
        warm = ParallelRunner(jobs=1, cache=cache, version="vtest")
        point = RunPoint(W7, None, SimulationConfig(duration_s=0.005))
        first = warm.run_points([point])[0]
        assert warm.stats.simulated == 1

        plain = ParallelRunner(jobs=1, cache=cache, version="vtest")
        second = plain.run_points([point])[0]
        assert plain.stats.cache_hits == 1
        assert plain.stats.simulated == 0
        assert scalar_fields(first) == scalar_fields(second)
