"""Tests for the parallel runner and its content-addressed result cache.

The acceptance bar: any experiment run with ``jobs > 1`` must produce
bit-identical metrics to the serial path, and a warm-cache rerun must
execute zero simulations.
"""

import dataclasses
import pickle

import pytest

from repro.core.taxonomy import BASELINE_SPEC, spec_by_key
from repro.experiments.common import (
    clear_result_cache,
    get_default_runner,
    run_matrix,
    set_default_runner,
)
from repro.sim.engine import SimulationConfig, run_workload
from repro.sim.runner import (
    ParallelRunner,
    ResultCache,
    RunPoint,
    canonicalize,
    code_version,
    config_hash,
    stable_hash,
)
from repro.sim.sweep import sweep_policies
from repro.sim.workloads import ALL_WORKLOADS, get_workload

QUICK = SimulationConfig(duration_s=0.01)
DVFS = spec_by_key("distributed-dvfs-none")


def quick_points(n=3, config=QUICK):
    specs = [BASELINE_SPEC, DVFS, None]
    return [
        RunPoint(w, specs[i % len(specs)], config)
        for i, w in enumerate(ALL_WORKLOADS[:n])
    ]


class TestSerialParallelEquivalence:
    def test_parallel_matches_serial_bit_for_bit(self):
        """Every RunResult field agrees exactly between jobs=1 and jobs=2."""
        points = quick_points(3)
        serial = ParallelRunner(jobs=1).run_points(points)
        parallel = ParallelRunner(jobs=2).run_points(points)
        assert len(serial) == len(parallel) == len(points)
        for s, p in zip(serial, parallel):
            assert dataclasses.asdict(s) == dataclasses.asdict(p)

    def test_parallel_matches_direct_run_workload(self):
        """The runner introduces no drift versus the plain entry point."""
        point = quick_points(1)[0]
        direct = run_workload(point.workload, point.spec, point.config)
        via_pool = ParallelRunner(jobs=2).run_points(quick_points(2))[0]
        assert direct == via_pool

    def test_results_ordered_by_input(self):
        points = quick_points(3)
        results = ParallelRunner(jobs=3).run_points(points)
        for point, result in zip(points, results):
            assert result.workload == point.workload.name

    def test_sweep_parallel_matches_serial(self):
        """The sweep entry point agrees across backends too."""
        workloads = [get_workload("workload1"), get_workload("workload7")]
        specs = [BASELINE_SPEC, DVFS]
        serial = sweep_policies(specs, workloads, QUICK)
        parallel = sweep_policies(
            specs, workloads, QUICK, runner=ParallelRunner(jobs=2)
        )
        assert [p.value for p in serial] == [p.value for p in parallel]
        for s, p in zip(serial, parallel):
            assert s.results == p.results

    def test_run_matrix_parallel_matches_serial(self):
        """The experiments' shared grid agrees across backends."""
        workloads = list(ALL_WORKLOADS[:2])
        specs = [BASELINE_SPEC, DVFS]
        clear_result_cache()
        serial = run_matrix(specs, workloads, QUICK)
        clear_result_cache()
        old = set_default_runner(ParallelRunner(jobs=2))
        try:
            parallel = run_matrix(specs, workloads, QUICK)
        finally:
            set_default_runner(old)
            clear_result_cache()
        assert serial == parallel


class TestCache:
    def test_warm_rerun_executes_zero_simulations(self, tmp_path):
        points = quick_points(2)
        first = ParallelRunner(jobs=1, cache=ResultCache(tmp_path), version="v")
        cold = first.run_points(points)
        assert first.stats.simulated == len(points)
        assert first.stats.cache_hits == 0

        second = ParallelRunner(jobs=2, cache=ResultCache(tmp_path), version="v")
        warm = second.run_points(points)
        assert second.stats.simulated == 0
        assert second.stats.cache_hits == len(points)
        assert warm == cold

    def test_config_change_invalidates(self, tmp_path):
        runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path), version="v")
        w = get_workload("workload1")
        runner.run_workload(w, BASELINE_SPEC, QUICK)
        runner.run_workload(
            w, BASELINE_SPEC, SimulationConfig(duration_s=0.01, threshold_c=90.0)
        )
        assert runner.stats.simulated == 2

    def test_policy_change_invalidates(self, tmp_path):
        runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path), version="v")
        w = get_workload("workload1")
        runner.run_workload(w, BASELINE_SPEC, QUICK)
        runner.run_workload(w, DVFS, QUICK)
        runner.run_workload(w, None, QUICK)
        assert runner.stats.simulated == 3

    def test_code_version_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        w = get_workload("workload1")
        a = ParallelRunner(cache=cache, version="v1")
        a.run_workload(w, BASELINE_SPEC, QUICK)
        b = ParallelRunner(cache=cache, version="v2")
        b.run_workload(w, BASELINE_SPEC, QUICK)
        assert b.stats.simulated == 1
        assert b.stats.cache_hits == 0

    @pytest.mark.parametrize(
        "garbage", [b"not a pickle", b"garbage\n", b"", b"\x80\x05trunc"]
    )
    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path, garbage):
        cache = ResultCache(tmp_path)
        point = quick_points(1)[0]
        key = config_hash(point, "v")
        cache.put(key, "placeholder")
        path = cache._path(key)
        path.write_bytes(garbage)
        runner = ParallelRunner(cache=ResultCache(tmp_path), version="v")
        result = runner.run_points([point])[0]
        assert result.workload == point.workload.name
        assert runner.stats.simulated == 1
        # The corrupt entry was overwritten with the good result.
        assert pickle.loads(path.read_bytes()) == result

    def test_duplicate_points_simulate_once(self, tmp_path):
        point = quick_points(1)[0]
        runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path), version="v")
        a, b = runner.run_points([point, point])
        assert a == b
        assert runner.stats.simulated == 1

    def test_clear_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(cache=cache, version="v")
        runner.run_points(quick_points(2))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestCacheConcurrency:
    """Two writers racing on one key must never tear or leak files."""

    def test_concurrent_writers_same_key(self, tmp_path):
        """Hammer one key from two threads: after every round the entry
        is a complete pickle holding one of the written values (atomic
        temp-file + os.replace publication), reads mid-race never see a
        torn value, and no orphaned ``*.tmp`` files survive."""
        import threading

        cache = ResultCache(tmp_path)
        key = "a" * 64
        rounds = 200
        errors = []
        barrier = threading.Barrier(2)

        def writer(tag):
            try:
                for i in range(rounds):
                    barrier.wait()
                    cache.put(key, (tag, i))
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(tag,))
            for tag in ("left", "right")
        ]
        for t in threads:
            t.start()
        seen = 0
        while any(t.is_alive() for t in threads):
            value = cache.get(key)
            if value is not None:
                assert value[0] in ("left", "right")
                assert 0 <= value[1] < rounds
                seen += 1
        for t in threads:
            t.join()

        assert not errors
        final = cache.get(key)
        assert final is not None and final[0] in ("left", "right")
        assert final[1] == rounds - 1
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []
        assert len(cache) == 1
        assert seen > 0

    def test_concurrent_distinct_keys(self, tmp_path):
        """Writers on different keys sharing one shard directory don't
        interfere."""
        import threading

        cache = ResultCache(tmp_path)
        keys = ["ab" + format(i, "062x") for i in range(8)]

        def writer(key):
            for i in range(50):
                cache.put(key, (key, i))

        threads = [
            threading.Thread(target=writer, args=(k,)) for k in keys
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for key in keys:
            assert cache.get(key) == (key, 49)
        assert len(cache) == len(keys)
        assert list(tmp_path.rglob("*.tmp")) == []


class TestSerialFallback:
    def test_jobs_1_never_creates_a_pool(self, monkeypatch):
        """jobs=1 must stay in-process: poison the pool to prove it."""
        import concurrent.futures

        def boom(*a, **k):
            raise AssertionError("ProcessPoolExecutor created with jobs=1")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", boom)
        results = ParallelRunner(jobs=1).run_points(quick_points(2))
        assert len(results) == 2

    def test_single_point_never_creates_a_pool(self, monkeypatch):
        import concurrent.futures

        def boom(*a, **k):
            raise AssertionError("pool created for a single point")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", boom)
        results = ParallelRunner(jobs=8).run_points(quick_points(1))
        assert len(results) == 1

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=-2)

    def test_jobs_zero_means_all_cores(self):
        import os

        assert ParallelRunner(jobs=0).jobs == (os.cpu_count() or 1)


class TestObservability:
    def test_per_point_timings_recorded(self, tmp_path):
        runner = ParallelRunner(cache=ResultCache(tmp_path), version="v")
        points = quick_points(2)
        runner.run_points(points)
        assert len(runner.stats.reports) == 2
        for report, point in zip(runner.stats.reports, points):
            assert report.label == point.label
            assert not report.cache_hit
            assert report.elapsed_s > 0
        runner.run_points(points)
        hits = [r for r in runner.stats.reports if r.cache_hit]
        assert len(hits) == 2
        assert "2 simulated" in runner.stats.summary()

    def test_default_runner_is_serial_uncached(self):
        runner = get_default_runner()
        assert runner.jobs == 1
        assert runner.cache is None

    def test_execution_spans_recorded(self, tmp_path):
        """Simulated points carry a wall-clock span (start + pid) for the
        Chrome-trace export; cache hits carry neither."""
        import os

        runner = ParallelRunner(cache=ResultCache(tmp_path), version="v")
        points = quick_points(2)
        runner.run_points(points)
        for report in runner.stats.reports:
            assert report.pid == os.getpid()
            assert report.started_at > 0
        runner.run_points(points)
        for report in runner.stats.reports[2:]:
            assert report.cache_hit
            assert report.pid == 0
            assert report.started_at == 0.0

    def test_registry_counters_mirror_stats(self, tmp_path):
        from repro.obs.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, registry=registry)
        runner = ParallelRunner(cache=cache, version="v", registry=registry)
        points = quick_points(2)
        runner.run_points(points)
        runner.run_points(points)
        snap = registry.as_dict()
        assert snap["runner_points_simulated_total"] == 2
        assert snap["runner_points_cached_total"] == 2
        assert snap["cache_misses_total"] == 2
        assert snap["cache_hits_total"] == 2
        assert snap["cache_puts_total"] == 2


class TestHashingPrimitives:
    def test_canonicalize_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            canonicalize(object())

    def test_stable_hash_distinguishes_structure(self):
        assert stable_hash([1, 2]) != stable_hash([2, 1])
        assert stable_hash("12") != stable_hash(12)

    def test_code_version_is_cached_and_hex(self):
        v = code_version()
        assert v == code_version()
        assert len(v) == 64
        int(v, 16)
