"""Tests for the thermal/timing engine."""

import numpy as np
import pytest

from repro.core.taxonomy import spec_by_key
from repro.sim.engine import SimulationConfig, ThermalTimingSimulator, run_workload
from repro.sim.workloads import get_workload

W7 = get_workload("workload7")  # gzip-twolf-ammp-lucas


class TestConfigValidation:
    def test_bad_duration(self):
        with pytest.raises(ValueError):
            SimulationConfig(duration_s=0.0)

    def test_bad_warm_start(self):
        with pytest.raises(ValueError):
            SimulationConfig(warm_start_fraction=1.5)

    def test_bad_sensor_noise(self):
        with pytest.raises(ValueError):
            SimulationConfig(sensor_noise_std_c=-1.0)

    @pytest.mark.parametrize(
        "field", [
            "trace_duration_s", "power_scale", "hardware_trip_freeze_s",
            "migration_period_s",
        ],
    )
    @pytest.mark.parametrize("value", [0.0, -0.1])
    def test_non_positive_scalars_rejected_at_construction(self, field, value):
        """These used to fail deep inside trace generation (or not at
        all); they must raise a clear ValueError up front."""
        with pytest.raises(ValueError, match=field):
            SimulationConfig(**{field: value})

    def test_benchmark_count_must_match_cores(self):
        with pytest.raises(ValueError):
            ThermalTimingSimulator(("gzip",), None, SimulationConfig(duration_s=0.01))


class TestUnthrottled:
    def test_runs_at_full_speed(self):
        cfg = SimulationConfig(duration_s=0.02)
        result = run_workload(W7, None, cfg)
        assert result.policy == "unthrottled"
        assert result.duty_cycle == pytest.approx(1.0)
        assert result.migrations == 0

    def test_bips_matches_trace_rates(self):
        """With no throttling, throughput equals the sum of the traces'
        nominal rates."""
        cfg = SimulationConfig(duration_s=0.02)
        sim = ThermalTimingSimulator(W7.benchmarks, None, cfg)
        n_steps = int(round(cfg.duration_s / sim.dt))
        expected = sum(
            float(
                sim.scheduler.process(i).trace.instructions[:n_steps].sum()
            )
            for i in range(4)
        ) / cfg.duration_s / 1e9
        result = sim.run()
        assert result.bips == pytest.approx(expected, rel=0.02)


class TestDeterminism:
    def test_same_seed_same_result(self):
        cfg = SimulationConfig(duration_s=0.02)
        a = run_workload(W7, spec_by_key("distributed-dvfs-none"), cfg)
        b = run_workload(W7, spec_by_key("distributed-dvfs-none"), cfg)
        assert a.bips == b.bips
        assert a.duty_cycle == b.duty_cycle
        assert a.max_temp_c == b.max_temp_c

    def test_different_seed_different_result(self):
        a = run_workload(
            W7, spec_by_key("distributed-dvfs-none"),
            SimulationConfig(duration_s=0.02, seed=1),
        )
        b = run_workload(
            W7, spec_by_key("distributed-dvfs-none"),
            SimulationConfig(duration_s=0.02, seed=2),
        )
        assert a.bips != b.bips


class TestThermalSafety:
    @pytest.mark.parametrize(
        "key",
        [
            "distributed-stop-go-none",
            "global-stop-go-none",
            "distributed-dvfs-none",
            "global-dvfs-none",
            "distributed-dvfs-sensor",
            "distributed-stop-go-counter",
        ],
    )
    def test_no_thermal_emergencies(self, key):
        """Every policy must keep the chip inside the envelope."""
        cfg = SimulationConfig(duration_s=0.05)
        result = run_workload(W7, spec_by_key(key), cfg)
        assert result.emergency_s == 0.0, result.max_temp_c
        assert result.max_temp_c <= 84.2 + 0.35

    def test_unthrottled_overheats(self):
        """Sanity: the limit binds — without DTM the chip exceeds it."""
        cfg = SimulationConfig(duration_s=0.05)
        result = run_workload(W7, None, cfg)
        assert result.max_temp_c > 84.2


class TestPolicyBehaviour:
    def test_stopgo_freezes_and_resumes(self, quick_stopgo_run):
        r = quick_stopgo_run
        assert r.stopgo_trips > 0
        assert 0.05 < r.duty_cycle < 0.9

    def test_dvfs_scales_continuously(self, quick_dvfs_run):
        r = quick_dvfs_run
        assert r.dvfs_transitions > 0
        assert r.stopgo_trips == 0
        assert 0.4 < r.duty_cycle < 1.0

    def test_dvfs_beats_stopgo(self, quick_dvfs_run, quick_stopgo_run):
        """The paper's headline: DVFS >> stop-go under thermal duress."""
        assert quick_dvfs_run.bips > 1.3 * quick_stopgo_run.bips

    def test_distributed_beats_global_stopgo(self):
        cfg = SimulationConfig(duration_s=0.05)
        dist = run_workload(W7, spec_by_key("distributed-stop-go-none"), cfg)
        glob = run_workload(W7, spec_by_key("global-stop-go-none"), cfg)
        assert dist.bips > glob.bips

    def test_migration_policy_migrates(self):
        cfg = SimulationConfig(duration_s=0.06)
        r = run_workload(W7, spec_by_key("distributed-stop-go-counter"), cfg)
        assert r.migrations > 0

    def test_migration_rescues_stopgo(self):
        cfg = SimulationConfig(duration_s=0.06)
        base = run_workload(W7, spec_by_key("distributed-stop-go-none"), cfg)
        mig = run_workload(W7, spec_by_key("distributed-stop-go-counter"), cfg)
        assert mig.bips > base.bips


class TestSeriesRecording:
    def test_series_contents(self):
        cfg = SimulationConfig(duration_s=0.02, record_series=True)
        r = run_workload(W7, spec_by_key("distributed-dvfs-none"), cfg)
        s = r.series
        assert s is not None
        n = len(s.times)
        assert s.scales.shape == (n, 4)
        assert s.hotspot_temps["intreg"].shape == (n, 4)
        assert s.assignments.shape == (n, 4)
        # Effective scales are physical.
        assert np.all(s.scales >= 0.0) and np.all(s.scales <= 1.0)

    def test_no_series_by_default(self, quick_dvfs_run):
        assert quick_dvfs_run.series is None

    def test_core_series_view(self):
        cfg = SimulationConfig(duration_s=0.01, record_series=True)
        r = run_workload(W7, spec_by_key("distributed-dvfs-none"), cfg)
        view = r.series.core_series(2)
        assert set(view) >= {"times", "scale", "intreg", "fpreg", "pid"}


class TestWarmStart:
    def test_auto_warm_start_below_threshold(self):
        cfg = SimulationConfig(duration_s=0.005)
        sim = ThermalTimingSimulator(
            W7.benchmarks, spec_by_key("distributed-dvfs-none"), cfg
        )
        sim._warm_start()
        assert sim.thermal.max_block_temperature() <= 84.2 - 1.0

    def test_cool_workload_starts_at_full_power_steady(self):
        cool = ("mcf", "mcf", "mcf", "mcf")
        cfg = SimulationConfig(duration_s=0.005)
        sim = ThermalTimingSimulator(cool, spec_by_key("distributed-dvfs-none"), cfg)
        sim._warm_start()
        # mcf everywhere cannot reach the limit: warm start uses full power.
        assert sim.thermal.max_block_temperature() < 84.2 - 1.0

    def test_explicit_fraction_respected(self):
        cfg = SimulationConfig(duration_s=0.005, warm_start_fraction=0.1)
        sim = ThermalTimingSimulator(
            W7.benchmarks, spec_by_key("distributed-dvfs-none"), cfg
        )
        sim._warm_start()
        low = sim.thermal.max_block_temperature()
        cfg2 = SimulationConfig(duration_s=0.005, warm_start_fraction=0.9)
        sim2 = ThermalTimingSimulator(
            W7.benchmarks, spec_by_key("distributed-dvfs-none"), cfg2
        )
        sim2._warm_start()
        assert sim2.thermal.max_block_temperature() > low


class TestAccounting:
    def test_duration_respected(self, quick_dvfs_run):
        assert quick_dvfs_run.duration_s == pytest.approx(0.05, rel=0.01)

    def test_instructions_consistent(self, quick_dvfs_run):
        r = quick_dvfs_run
        assert sum(r.per_core_instructions) == pytest.approx(r.instructions)
        assert r.bips == pytest.approx(r.instructions / r.duration_s / 1e9)

    def test_result_workload_name(self):
        cfg = SimulationConfig(duration_s=0.01)
        r = run_workload(W7, spec_by_key("distributed-dvfs-none"), cfg)
        assert r.workload == "workload7"
        assert r.benchmarks == W7.benchmarks
