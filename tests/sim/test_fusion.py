"""Fused-vs-stepwise engine equivalence and fusion-eligibility rules.

The engine's fused whole-run path (``_run_fused``) must be a pure
optimization: for any configuration, flipping ``fuse_steps`` changes
wall time only — every reported metric, per-core counter, event stream
and the final thermal state are bit-identical. And fusion must refuse
to engage whenever any per-step observer (policy, fault plan, guard,
PROCHOT, series, event log, profiler) could see or perturb an
intermediate step.
"""

from dataclasses import fields, replace

import numpy as np
import pytest

from repro.core.taxonomy import spec_by_key
from repro.faults.guards import GuardConfig
from repro.obs import RunEventLog, StepProfiler
from repro.sim.bench import _bench_fault_plan
from repro.sim.engine import SimulationConfig, ThermalTimingSimulator
from repro.sim.workloads import get_workload

W7 = get_workload("workload7")
CFG = SimulationConfig(duration_s=0.02)

#: The four policy configs from benchmarks/test_engine_speed.py.
POLICY_KEYS = [
    None,
    "distributed-stop-go-none",
    "distributed-dvfs-none",
    "distributed-dvfs-sensor",
]
POLICY_IDS = ["unthrottled", "stopgo", "dvfs", "dvfs+sensor-migration"]


def _sim(spec_key, config, **kwargs):
    spec = spec_by_key(spec_key) if spec_key else None
    return ThermalTimingSimulator(W7.benchmarks, spec, config, **kwargs)


def scalar_fields(result) -> dict:
    """Every RunResult field except the attachments compared separately."""
    return {
        f.name: getattr(result, f.name)
        for f in fields(result)
        if f.name not in ("series", "events")
    }


class TestFusedStepwiseIdentity:
    @pytest.mark.parametrize("spec_key", POLICY_KEYS, ids=POLICY_IDS)
    def test_metrics_and_state_identical(self, spec_key):
        fused_sim = _sim(spec_key, CFG)
        fused = fused_sim.run()
        step_sim = _sim(spec_key, replace(CFG, fuse_steps=False))
        stepwise = step_sim.run()

        assert not step_sim.last_run_fused
        assert scalar_fields(fused) == scalar_fields(stepwise)
        np.testing.assert_array_equal(
            fused_sim.thermal.temperatures, step_sim.thermal.temperatures
        )
        for pf, ps in zip(
            fused_sim.scheduler.processes, step_sim.scheduler.processes
        ):
            assert pf.position == ps.position
            assert pf.counters.instructions == ps.counters.instructions
            assert pf.counters.cycles == ps.counters.cycles
            assert pf.counters.adjusted_cycles == ps.counters.adjusted_cycles

    @pytest.mark.parametrize("spec_key", POLICY_KEYS, ids=POLICY_IDS)
    def test_event_streams_identical(self, spec_key):
        """Event-log capture never depends on the fuse_steps setting.

        (An attached log itself blocks fusion, so both runs execute
        stepwise — the point is that the user-visible event stream is
        invariant under the flag.)
        """
        log_a, log_b = RunEventLog(), RunEventLog()
        a = _sim(spec_key, CFG, event_log=log_a).run()
        b = _sim(spec_key, replace(CFG, fuse_steps=False), event_log=log_b).run()
        assert log_a.counts() == log_b.counts()
        assert len(log_a) == len(log_b)
        assert a.events == b.events

    def test_unthrottled_actually_fuses(self):
        sim = _sim(None, CFG)
        assert sim.fusion_blockers == ()
        sim.run()
        assert sim.last_run_fused


class TestFusionEligibility:
    def test_fault_plan_blocks_fusion(self):
        cfg = replace(CFG, fault_plan=_bench_fault_plan(CFG.duration_s))
        sim = _sim(None, cfg)
        assert "fault-plan" in sim.fusion_blockers
        sim.run()
        assert not sim.last_run_fused

    def test_faulted_results_identical_either_way(self):
        """Under a plan both settings run stepwise and agree exactly."""
        cfg = replace(CFG, fault_plan=_bench_fault_plan(CFG.duration_s))
        a = _sim(None, cfg).run()
        b = _sim(None, replace(cfg, fuse_steps=False)).run()
        assert scalar_fields(a) == scalar_fields(b)
        assert a.faults == b.faults

    def test_guards_block_fusion(self):
        cfg = replace(CFG, guard=GuardConfig())
        assert "sensor-guards" in _sim(None, cfg).fusion_blockers

    def test_hardware_trip_blocks_fusion(self):
        cfg = replace(CFG, hardware_trip=True)
        assert "hardware-trip" in _sim(None, cfg).fusion_blockers

    def test_record_series_blocks_fusion(self):
        cfg = replace(CFG, record_series=True)
        assert "record-series" in _sim(None, cfg).fusion_blockers

    def test_observers_block_fusion(self):
        assert "event-log" in _sim(None, CFG, event_log=RunEventLog()).fusion_blockers
        assert "profiler" in _sim(None, CFG, profiler=StepProfiler()).fusion_blockers

    def test_policies_block_fusion(self):
        assert "throttle-policy" in _sim(
            "distributed-dvfs-none", CFG
        ).fusion_blockers
        assert "migration-policy" in _sim(
            "distributed-dvfs-sensor", CFG
        ).fusion_blockers

    def test_fuse_steps_false_blocks_fusion(self):
        sim = _sim(None, replace(CFG, fuse_steps=False))
        assert sim.fusion_blockers == ("disabled",)
