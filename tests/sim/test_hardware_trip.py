"""Tests for the PROCHOT-style hardware failsafe and sensor-bias faults."""

from dataclasses import replace

import pytest

from repro.core.taxonomy import spec_by_key
from repro.sim.engine import SimulationConfig, run_workload
from repro.sim.workloads import get_workload

W3 = get_workload("workload3")
DDV = spec_by_key("distributed-dvfs-none")
BASE = SimulationConfig(duration_s=0.05)


class TestSensorBias:
    def test_low_reading_sensor_overheats_chip(self):
        """A sensor reading low is the fault closed-loop DTM cannot see:
        the controller regulates the reading, the silicon overshoots."""
        biased = run_workload(W3, DDV, replace(BASE, sensor_offset_c=-3.0))
        assert biased.emergency_s > 0
        assert biased.max_temp_c > 84.2 + 0.35

    def test_high_reading_sensor_is_conservative(self):
        cautious = run_workload(W3, DDV, replace(BASE, sensor_offset_c=3.0))
        clean = run_workload(W3, DDV, BASE)
        assert cautious.emergency_s == 0.0
        assert cautious.bips < clean.bips

    def test_offset_zero_is_default_behaviour(self):
        a = run_workload(W3, DDV, BASE)
        b = run_workload(W3, DDV, replace(BASE, sensor_offset_c=0.0))
        assert a.bips == b.bips


class TestHardwareTrip:
    def test_trip_restores_safety_under_biased_sensors(self):
        cfg = replace(BASE, sensor_offset_c=-3.0, hardware_trip=True)
        result = run_workload(W3, DDV, cfg)
        assert result.prochot_events > 0
        assert result.emergency_s == 0.0
        assert result.max_temp_c <= 84.2 + 0.35

    def test_trip_costs_throughput(self):
        biased = run_workload(W3, DDV, replace(BASE, sensor_offset_c=-3.0))
        tripped = run_workload(
            W3, DDV, replace(BASE, sensor_offset_c=-3.0, hardware_trip=True)
        )
        assert tripped.bips < biased.bips

    def test_trip_inert_with_good_sensors(self):
        """With calibrated sensors the PI keeps silicon below the trip
        level, so the failsafe never fires and costs nothing."""
        clean = run_workload(W3, DDV, BASE)
        with_trip = run_workload(W3, DDV, replace(BASE, hardware_trip=True))
        assert with_trip.prochot_events == 0
        assert with_trip.bips == pytest.approx(clean.bips)

    def test_trip_protects_unthrottled_chip(self):
        """Even with NO policy at all, the hardware trip bounds silicon
        temperature (the pure-failsafe operating mode)."""
        result = run_workload(W3, None, replace(BASE, hardware_trip=True))
        assert result.prochot_events > 0
        assert result.max_temp_c <= 84.2 + 0.35

    def test_prochot_zero_when_disabled(self):
        assert run_workload(W3, DDV, BASE).prochot_events == 0

    def test_trip_works_under_stopgo_too(self):
        cfg = replace(
            BASE, sensor_offset_c=-3.0, hardware_trip=True
        )
        result = run_workload(
            W3, spec_by_key("distributed-stop-go-none"), cfg
        )
        assert result.emergency_s == 0.0
