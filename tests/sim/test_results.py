"""Tests for result containers."""

import numpy as np
import pytest

from repro.sim.results import RunResult, TimeSeries


def make_result(workload="w", bips=10.0, policy="p"):
    return RunResult(
        policy=policy,
        workload=workload,
        benchmarks=("a", "b", "c", "d"),
        duration_s=0.5,
        bips=bips,
        duty_cycle=0.8,
        instructions=bips * 0.5e9,
        per_core_instructions=(1.0, 2.0, 3.0, 4.0),
        max_temp_c=83.0,
        emergency_s=0.0,
        migrations=3,
        dvfs_transitions=100,
        stopgo_trips=0,
    )


class TestRunResult:
    def test_relative_to(self):
        base = make_result(bips=5.0)
        better = make_result(bips=12.5)
        assert better.relative_to(base) == pytest.approx(2.5)

    def test_relative_requires_same_workload(self):
        with pytest.raises(ValueError):
            make_result(workload="w1").relative_to(make_result(workload="w2"))

    def test_relative_zero_baseline(self):
        with pytest.raises(ZeroDivisionError):
            make_result().relative_to(make_result(bips=0.0))

    def test_emergency_flag(self):
        assert not make_result().had_emergency

    def test_summary_contains_key_fields(self):
        s = make_result(policy="Dist. DVFS").summary()
        assert "Dist. DVFS" in s
        assert "BIPS" in s


class TestTimeSeries:
    def test_core_series(self):
        n, cores = 6, 4
        ts = TimeSeries(
            times=np.arange(n, dtype=float),
            scales=np.ones((n, cores)),
            hotspot_temps={
                "intreg": np.full((n, cores), 80.0),
                "fpreg": np.full((n, cores), 75.0),
            },
            assignments=np.tile(np.arange(cores), (n, 1)),
        )
        view = ts.core_series(1)
        assert view["pid"].tolist() == [1] * n
        assert view["intreg"].shape == (n,)
        assert view["scale"].shape == (n,)
