"""Unit tests for the bench suite plumbing (no simulations run here)."""

import json

import pytest

from repro.sim.bench import (
    DEFAULT_TOLERANCE,
    ENGINE_BENCH_CASES,
    SCHEMA,
    case_config,
    case_steps,
    compare_to_baseline,
    load_bench_json,
    write_bench_json,
)


def _payload(**sps):
    return {
        "schema": SCHEMA,
        "cases": {
            key: {"steps_per_second": value} for key, value in sps.items()
        },
    }


class TestCaseList:
    def test_keys_unique(self):
        keys = [c.key for c in ENGINE_BENCH_CASES]
        assert len(keys) == len(set(keys))

    def test_covers_policy_fault_and_full_axes(self):
        assert any(c.spec_key is None and c.short for c in ENGINE_BENCH_CASES)
        assert any(c.faulted for c in ENGINE_BENCH_CASES)
        assert any(not c.short for c in ENGINE_BENCH_CASES)

    def test_faulted_case_carries_plan(self):
        faulted = next(c for c in ENGINE_BENCH_CASES if c.faulted)
        plan = case_config(faulted).fault_plan
        assert plan is not None and not plan.is_empty

    def test_unfaulted_case_has_no_plan(self):
        plain = next(c for c in ENGINE_BENCH_CASES if not c.faulted)
        assert case_config(plain).fault_plan is None

    def test_case_steps_match_horizon(self):
        # 0.02 s at the 100k-cycle / 3.6 GHz sample period = 720 steps.
        short = next(c for c in ENGINE_BENCH_CASES if c.duration_s == 0.02)
        assert case_steps(short) == 720


class TestCaseSelectionFlag:
    def _parser(self):
        import argparse

        from repro.sim.bench import add_bench_arguments

        parser = argparse.ArgumentParser()
        add_bench_arguments(parser)
        return parser

    def test_known_keys_parse(self):
        args = self._parser().parse_args(
            ["--cases", "fleet-sweep-dvfs", "pool-sweep-dvfs"]
        )
        assert args.cases == ["fleet-sweep-dvfs", "pool-sweep-dvfs"]

    def test_unknown_key_rejected(self):
        with pytest.raises(SystemExit):
            self._parser().parse_args(["--cases", "no-such-case"])

    def test_default_is_all_cases(self):
        assert self._parser().parse_args([]).cases is None


class TestRegressionGate:
    def test_passes_when_equal(self):
        p = _payload(a=1000.0, b=2000.0)
        assert compare_to_baseline(p, p) == []

    def test_passes_within_tolerance(self):
        cur = _payload(a=1000.0 * (1 - DEFAULT_TOLERANCE) + 1)
        assert compare_to_baseline(cur, _payload(a=1000.0)) == []

    def test_fails_beyond_tolerance(self):
        problems = compare_to_baseline(
            _payload(a=500.0), _payload(a=1000.0)
        )
        assert len(problems) == 1 and "a:" in problems[0]

    def test_improvement_never_fails(self):
        assert compare_to_baseline(
            _payload(a=9000.0), _payload(a=1000.0)
        ) == []

    def test_short_subset_checked_against_full_baseline(self):
        baseline = _payload(a=1000.0, full_only=5000.0)
        assert compare_to_baseline(_payload(a=1000.0), baseline) == []

    def test_tolerance_validation(self):
        p = _payload(a=1.0)
        with pytest.raises(ValueError):
            compare_to_baseline(p, p, tolerance=1.5)


class TestArtifactIO:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "bench.json")
        payload = _payload(a=123.4)
        write_bench_json(payload, path)
        assert load_bench_json(path) == payload

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9", "cases": {}}))
        with pytest.raises(ValueError):
            load_bench_json(str(path))


class TestCommittedBaseline:
    def test_repo_artifact_is_loadable_and_complete(self):
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "..")
        payload = load_bench_json(os.path.join(root, "BENCH_engine.json"))
        # The baseline may lag the suite (new cases land before the
        # artifact is regenerated; compare_to_baseline only checks
        # shared keys) but must never name unknown cases, and every
        # CI-gated short case must be present.
        suite_keys = {c.key for c in ENGINE_BENCH_CASES}
        assert set(payload["cases"]) <= suite_keys
        short_keys = {c.key for c in ENGINE_BENCH_CASES if c.short}
        assert short_keys <= set(payload["cases"])
        for entry in payload["cases"].values():
            assert entry["steps_per_second"] > 0
