"""Tests for the engine's migration-trigger logic.

The paper actuates migration "when the local thermal control of at least
two individual cores signals that their critical hotspots have changed";
the engine adds a frozen-core urgency trigger and a profiling fallback.
These tests drive `_migration_triggered` directly.
"""


from repro.core.taxonomy import spec_by_key
from repro.sim.engine import SimulationConfig, ThermalTimingSimulator
from repro.sim.workloads import get_workload

W7 = get_workload("workload7")
CFG = SimulationConfig(duration_s=0.02)


def make_sim(key="distributed-dvfs-counter"):
    return ThermalTimingSimulator(W7.benchmarks, spec_by_key(key), CFG)


def readings(units):
    """Per-core readings whose critical unit is given by ``units``."""
    out = []
    for u in units:
        other = "fpreg" if u == "intreg" else "intreg"
        out.append({u: 83.0, other: 78.0})
    return out


class TestCriticalChangeTrigger:
    def test_first_call_always_triggers(self):
        sim = make_sim()
        assert sim._migration_triggered(0.0, readings(["intreg"] * 4))

    def test_no_change_no_trigger(self):
        sim = make_sim()
        r = readings(["intreg"] * 4)
        sim._migration_triggered(0.0, r)
        assert not sim._migration_triggered(0.01, r)

    def test_one_change_insufficient(self):
        sim = make_sim()
        sim._migration_triggered(0.0, readings(["intreg"] * 4))
        one = readings(["fpreg", "intreg", "intreg", "intreg"])
        assert not sim._migration_triggered(0.01, one)

    def test_two_changes_trigger(self):
        """"at least two individual cores" (Section 6.1)."""
        sim = make_sim()
        sim._migration_triggered(0.0, readings(["intreg"] * 4))
        two = readings(["fpreg", "fpreg", "intreg", "intreg"])
        assert sim._migration_triggered(0.01, two)

    def test_reference_updates_on_trigger(self):
        sim = make_sim()
        sim._migration_triggered(0.0, readings(["intreg"] * 4))
        two = readings(["fpreg", "fpreg", "intreg", "intreg"])
        sim._migration_triggered(0.01, two)
        # The same pattern again is now the reference: no re-trigger.
        assert not sim._migration_triggered(0.02, two)


class TestUrgencyTrigger:
    def test_frozen_core_triggers_under_stopgo(self):
        sim = make_sim("distributed-stop-go-counter")
        r = readings(["intreg"] * 4)
        sim._migration_triggered(0.0, r)
        # Trip core 0 so it freezes; same critical pattern otherwise.
        hot = [dict(x) for x in r]
        hot[0]["intreg"] = 84.1
        sim.throttle.scales(0.005, hot)
        assert sim.throttle.is_frozen(0, 0.006)
        assert sim._migration_triggered(0.01, r)


class TestProfilingFallback:
    def test_sensor_policy_triggers_while_table_insufficient(self):
        sim = make_sim("distributed-dvfs-sensor")
        r = readings(["intreg"] * 4)
        sim._migration_triggered(0.0, r)
        # No critical change, but the table is empty -> stale fallback
        # fires once three periods elapse.
        assert not sim._migration_triggered(0.01, r)
        assert sim._migration_triggered(0.05, r)

    def test_counter_policy_has_no_stale_fallback(self):
        sim = make_sim("distributed-dvfs-counter")
        r = readings(["intreg"] * 4)
        sim._migration_triggered(0.0, r)
        assert not sim._migration_triggered(0.05, r)
        assert not sim._migration_triggered(1.0, r)
