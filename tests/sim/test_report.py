"""Tests for result serialisation and reporting."""

import pytest

from repro.sim.report import (
    comparison_report,
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.sim.results import RunResult


def make_result(policy="Dist. stop-go", workload="w1", bips=5.0):
    return RunResult(
        policy=policy,
        workload=workload,
        benchmarks=("a", "b", "c", "d"),
        duration_s=0.5,
        bips=bips,
        duty_cycle=0.5,
        instructions=bips * 0.5e9,
        per_core_instructions=(1.0, 2.0, 3.0, 4.0),
        max_temp_c=84.0,
        emergency_s=0.0,
        migrations=2,
        dvfs_transitions=10,
        stopgo_trips=3,
    )


class TestDictRoundTrip:
    def test_roundtrip(self):
        original = make_result()
        restored = result_from_dict(result_to_dict(original))
        assert restored == original

    def test_tuples_restored(self):
        restored = result_from_dict(result_to_dict(make_result()))
        assert isinstance(restored.benchmarks, tuple)
        assert isinstance(restored.per_core_instructions, tuple)

    def test_version_checked(self):
        data = result_to_dict(make_result())
        data["format_version"] = 99
        with pytest.raises(ValueError):
            result_from_dict(data)


class TestFileRoundTrip:
    def test_save_load(self, tmp_path):
        results = [make_result(bips=5.0), make_result("Dist. DVFS", bips=12.0)]
        path = save_results(results, tmp_path / "out.json")
        loaded = load_results(path)
        assert loaded == results

    def test_suffix_appended(self, tmp_path):
        path = save_results([make_result()], tmp_path / "out")
        assert path.suffix == ".json"


class TestComparisonReport:
    def test_normalised_to_baseline(self):
        results = [
            make_result("Dist. stop-go", bips=5.0),
            make_result("Dist. DVFS", bips=12.5),
        ]
        text = comparison_report(results)
        assert "2.50X" in text
        assert "1.00X" in text

    def test_multiple_runs_averaged(self):
        results = [
            make_result("Dist. stop-go", "w1", bips=4.0),
            make_result("Dist. stop-go", "w2", bips=6.0),
            make_result("Dist. DVFS", "w1", bips=10.0),
        ]
        text = comparison_report(results)
        assert "5.00" in text  # averaged baseline
        assert "2.00X" in text

    def test_missing_baseline_drops_column(self):
        text = comparison_report([make_result("Dist. DVFS", bips=10.0)])
        assert "vs baseline" not in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            comparison_report([])
