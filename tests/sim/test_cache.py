"""ResultCache hygiene and eviction tests.

The sharded/evicting rewrite of :class:`~repro.sim.runner.ResultCache`
keeps the historical on-disk format (``root/<key[:2]>/<key>.pkl``,
atomic tmp + ``os.replace`` publication) and adds: corrupt entries
unlinked on read, orphaned ``*.tmp`` debris swept on open (age-gated),
and an optional ``max_bytes`` cap enforced by LRU eviction with entry
mtime as the recency clock. ``tests/sim/test_runner.py`` covers the
basic store/concurrency behaviour; this module covers the new
machinery.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.telemetry import MetricsRegistry
from repro.sim.runner import ResultCache


def entry_bytes(value) -> int:
    """On-disk size of one cached entry holding ``value``."""
    return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


def set_age(path: Path, age_s: float) -> None:
    """Backdate ``path``'s mtime by ``age_s`` seconds."""
    then = time.time() - age_s
    os.utime(path, (then, then))


class TestCorruptEntries:
    def test_garbage_entry_is_unlinked_and_missed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa11", {"x": 1})
        path = cache._path("aa11")
        path.write_bytes(b"definitely not a pickle")

        assert cache.get("aa11") is None
        assert not path.exists(), "corrupt entry left on disk"
        assert cache.corrupt_dropped == 1
        assert cache.misses == 1
        # The slot is now a plain (cheap) miss, not a repeated failure.
        assert cache.get("aa11") is None
        assert cache.corrupt_dropped == 1
        assert cache.misses == 2

    def test_truncated_pickle_is_unlinked(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("bb22", list(range(100)))
        path = cache._path("bb22")
        path.write_bytes(path.read_bytes()[:-10])

        assert cache.get("bb22") is None
        assert not path.exists()
        assert cache.corrupt_dropped == 1

    def test_unlink_adjusts_size_accounting(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa11", b"x" * 100)
        cache.put("ab22", b"y" * 100)
        before = cache.total_bytes
        path = cache._path("aa11")
        path.write_bytes(b"junk")  # external corruption: untracked
        cache.get("aa11")
        # The unlink subtracts what was actually on disk (the 4 junk
        # bytes); the delta between entry and junk size self-heals at
        # the next eviction re-scan.
        assert cache.total_bytes == before - len(b"junk")

    def test_overwrite_then_read_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("cc33", "old")
        cache.put("cc33", "new")
        assert cache.get("cc33") == "new"
        assert len(cache) == 1


class TestStaleTmpSweep:
    def test_open_sweeps_old_debris_keeps_young_and_entries(self, tmp_path):
        cache = ResultCache(tmp_path, sweep_stale=False)
        cache.put("aa11", 1)
        shard = tmp_path / "aa"
        old = shard / "orphan-old.tmp"
        old.write_bytes(b"debris")
        set_age(old, 7200.0)
        young = shard / "orphan-young.tmp"
        young.write_bytes(b"in-flight write")

        reopened = ResultCache(tmp_path)  # default: sweep on open
        assert reopened.stale_tmp_removed == 1
        assert not old.exists(), "stale tmp survived the sweep"
        assert young.exists(), "live writer's tmp was swept"
        assert reopened.get("aa11") == 1, "real entry was swept"

    def test_sweep_disabled_leaves_debris(self, tmp_path):
        cache = ResultCache(tmp_path, sweep_stale=False)
        cache.put("aa11", 1)
        old = tmp_path / "aa" / "orphan.tmp"
        old.write_bytes(b"debris")
        set_age(old, 7200.0)
        ResultCache(tmp_path, sweep_stale=False)
        assert old.exists()

    def test_explicit_sweep_respects_age(self, tmp_path):
        cache = ResultCache(tmp_path, sweep_stale=False)
        (tmp_path / "aa").mkdir()
        for age in (10.0, 100.0, 1000.0):
            path = tmp_path / "aa" / f"orphan-{age:.0f}.tmp"
            path.write_bytes(b"x")
            set_age(path, age)
        assert cache.sweep_stale_tmp(age_s=500.0) == 1
        assert cache.sweep_stale_tmp(age_s=50.0) == 1
        assert cache.sweep_stale_tmp(age_s=50.0) == 0
        assert cache.stale_tmp_removed == 2


class TestLRUEviction:
    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(20):
            cache.put(f"{i:02x}c0de", b"x" * 1000)
        assert len(cache) == 20
        assert cache.evictions == 0

    def test_oldest_entry_is_evicted_first(self, tmp_path):
        payload = b"x" * 1000
        size = entry_bytes(payload)
        cache = ResultCache(tmp_path, max_bytes=int(2.5 * size))
        cache.put("aa01", payload)
        cache.put("bb02", payload)
        set_age(cache._path("aa01"), 100.0)
        set_age(cache._path("bb02"), 50.0)

        cache.put("cc03", payload)  # over cap -> evict LRU (aa01)
        assert cache.get("aa01") is None
        assert cache.get("bb02") == payload
        assert cache.get("cc03") == payload
        assert cache.evictions == 1
        assert cache.evicted_bytes == size
        assert cache.total_bytes == 2 * size

    def test_get_refreshes_recency(self, tmp_path):
        payload = b"x" * 1000
        size = entry_bytes(payload)
        cache = ResultCache(tmp_path, max_bytes=int(2.5 * size))
        cache.put("aa01", payload)
        cache.put("bb02", payload)
        set_age(cache._path("aa01"), 100.0)
        set_age(cache._path("bb02"), 50.0)
        assert cache.get("aa01") == payload  # bumps aa01's mtime to now

        cache.put("cc03", payload)
        assert cache.get("aa01") == payload, "recently-read entry evicted"
        assert cache.get("bb02") is None

    def test_just_written_entry_is_never_its_own_victim(self, tmp_path):
        small = b"s" * 100
        cache = ResultCache(tmp_path, max_bytes=entry_bytes(small) + 1)
        cache.put("aa01", small)
        big = b"b" * 10_000
        cache.put("bb02", big)  # alone exceeds the cap
        assert cache.get("bb02") == big
        assert cache.get("aa01") is None
        assert len(cache) == 1

    def test_registry_instruments_track_eviction(self, tmp_path):
        registry = MetricsRegistry()
        payload = b"x" * 1000
        size = entry_bytes(payload)
        cache = ResultCache(
            tmp_path, registry=registry, max_bytes=int(2.5 * size)
        )
        cache.put("aa01", payload)
        cache.put("bb02", payload)
        set_age(cache._path("aa01"), 100.0)
        cache.put("cc03", payload)
        cache.get("bb02")
        cache.get("aa01")
        snapshot = registry.as_dict()
        assert snapshot["cache_puts_total"] == 3
        assert snapshot["cache_evictions_total"] == 1
        assert snapshot["cache_evicted_bytes_total"] == size
        assert snapshot["cache_hits_total"] == 1
        assert snapshot["cache_misses_total"] == 1
        assert snapshot["cache_bytes"] == 2 * size

    def test_eviction_pressure_gauge_tracks_window(self, tmp_path):
        """Evictions raise evicted-bytes/s; the gauge decays as they age."""
        from repro.sim.runner import EVICTION_PRESSURE_WINDOW_S

        registry = MetricsRegistry()
        payload = b"x" * 1000
        size = entry_bytes(payload)
        cache = ResultCache(
            tmp_path, registry=registry, max_bytes=int(2.5 * size)
        )
        assert cache.eviction_pressure == 0.0
        assert registry.as_dict()["cache_evictions_pressure"] == 0.0

        cache.put("aa01", payload)
        cache.put("bb02", payload)
        set_age(cache._path("aa01"), 100.0)
        cache.put("cc03", payload)  # evicts aa01
        expected = size / EVICTION_PRESSURE_WINDOW_S
        assert cache.eviction_pressure == pytest.approx(expected)
        assert registry.as_dict()["cache_evictions_pressure"] == (
            pytest.approx(expected)
        )

        # Slide the window past the eviction: the next put decays it.
        cache._eviction_events[0] = (
            cache._eviction_events[0][0] - 2 * EVICTION_PRESSURE_WINDOW_S,
            cache._eviction_events[0][1],
        )
        cache.put("bb02", payload)
        assert cache.eviction_pressure == 0.0
        assert registry.as_dict()["cache_evictions_pressure"] == 0.0

    def test_shard_byte_gauges_track_puts_and_evictions(self, tmp_path):
        """Per-shard gauges follow puts; evicted-empty shards report 0."""
        registry = MetricsRegistry()
        payload = b"x" * 1000
        size = entry_bytes(payload)
        cache = ResultCache(
            tmp_path, registry=registry, max_bytes=int(2.5 * size)
        )
        cache.put("aa01", payload)
        cache.put("bb02", payload)
        snapshot = registry.as_dict()
        assert snapshot['cache_shard_bytes{shard="aa"}'] == size
        assert snapshot['cache_shard_bytes{shard="bb"}'] == size

        set_age(cache._path("aa01"), 100.0)
        cache.put("cc03", payload)  # evicts aa01, emptying shard aa
        snapshot = registry.as_dict()
        assert snapshot['cache_shard_bytes{shard="aa"}'] == 0
        assert snapshot['cache_shard_bytes{shard="bb"}'] == size
        assert snapshot['cache_shard_bytes{shard="cc"}'] == size

    def test_shard_gauges_published_without_size_cap(self, tmp_path):
        """An uncapped cache (the serve default) still exports shards."""
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, registry=registry)
        payload = b"x" * 500
        cache.put("aa01", payload)
        assert registry.as_dict()['cache_shard_bytes{shard="aa"}'] == (
            entry_bytes(payload)
        )

    def test_bad_max_bytes(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_bytes=0)

    def test_reopened_cache_scans_existing_size(self, tmp_path):
        payload = b"x" * 1000
        ResultCache(tmp_path).put("aa01", payload)
        reopened = ResultCache(tmp_path, max_bytes=10 * entry_bytes(payload))
        assert reopened.total_bytes == entry_bytes(payload)


class TestEvictionUnderPressure:
    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=0, max_value=4000),
            min_size=1, max_size=25,
        ),
        cap=st.integers(min_value=64, max_value=8192),
    )
    def test_cap_invariants_hold_for_any_put_sequence(self, sizes, cap):
        """After every put: under the cap, or only the new entry remains.

        And the just-written entry is always readable — eviction must
        never throw away what the caller is about to use.
        """
        with tempfile.TemporaryDirectory() as root:
            cache = ResultCache(root, max_bytes=cap, sweep_stale=False)
            for i, size in enumerate(sizes):
                key = f"{i:02x}cafe"
                payload = b"x" * size
                cache.put(key, payload)
                assert cache.get(key) == payload
                files = list(Path(root).glob("*/*.pkl"))
                on_disk = sum(p.stat().st_size for p in files)
                assert on_disk <= cap or [p.name for p in files] == [
                    f"{key}.pkl"
                ], (
                    f"cap {cap} violated with {len(files)} entries "
                    f"({on_disk} bytes) after put #{i}"
                )
            # Tracked accounting equals the on-disk truth at the end.
            actual = sum(
                p.stat().st_size for p in Path(root).glob("*/*.pkl")
            )
            assert cache.total_bytes == actual
            assert cache.evicted_bytes == sum(
                entry_bytes(b"x" * s) for s in sizes
            ) - actual
