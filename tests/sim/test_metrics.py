"""Tests for the BIPS / adjusted-duty-cycle accounting."""

import pytest

from repro.sim.metrics import EMERGENCY_TOLERANCE_C, MetricsAccumulator


def make(n_cores=4, threshold=84.2):
    return MetricsAccumulator(n_cores=n_cores, threshold_c=threshold)


def step(m, dt=1e-3, work=None, stall=None, frozen=None, instr=None, temp=70.0):
    n = m.n_cores
    m.record_step(
        dt,
        work if work is not None else [dt] * n,
        stall if stall is not None else [0.0] * n,
        frozen if frozen is not None else [False] * n,
        instr if instr is not None else [1000.0] * n,
        temp,
    )


class TestDutyCycle:
    def test_full_speed_is_one(self):
        m = make()
        for _ in range(10):
            step(m)
        assert m.duty_cycle == pytest.approx(1.0)

    def test_paper_example_30_percent(self):
        """"if all cores run at 30% of maximum speed for an entire
        execution this amounts to a duty cycle of 30%"."""
        m = make()
        for _ in range(10):
            step(m, work=[0.3e-3] * 4)
        assert m.duty_cycle == pytest.approx(0.30)

    def test_paper_example_35_percent(self):
        """"half the time at 30% ... other half at 40% ... 35%"."""
        m = make()
        for _ in range(5):
            step(m, work=[0.3e-3] * 4)
        for _ in range(5):
            step(m, work=[0.4e-3] * 4)
        assert m.duty_cycle == pytest.approx(0.35)

    def test_overheads_lower_duty(self):
        """Stall time counts as zero work (PLL/migration overheads)."""
        m = make()
        step(m, work=[0.5e-3] * 4, stall=[0.5e-3] * 4)
        assert m.duty_cycle == pytest.approx(0.5)
        assert m.stall_time_s == pytest.approx(4 * 0.5e-3)

    def test_per_core_average(self):
        m = make(n_cores=2)
        step(m, work=[1e-3, 0.0], frozen=[False, True])
        assert m.duty_cycle == pytest.approx(0.5)
        assert m.frozen_time_s == pytest.approx(1e-3)


class TestBips:
    def test_simple(self):
        m = make()
        for _ in range(100):
            step(m, dt=1e-3, instr=[250_000.0] * 4)
        # 4 cores x 250k inst / ms = 1e9 inst/s = 1 BIPS.
        assert m.bips == pytest.approx(1.0)

    def test_empty_is_zero(self):
        m = make()
        assert m.bips == 0.0
        assert m.duty_cycle == 0.0

    def test_per_core_attribution(self):
        m = make(n_cores=2)
        step(m, instr=[100.0, 900.0])
        assert m.per_core_instructions == [100.0, 900.0]
        assert m.instructions == 1000.0


class TestEmergencies:
    def test_below_threshold_clean(self):
        m = make()
        step(m, temp=84.2)
        assert not m.had_emergency

    def test_tolerance_band(self):
        m = make()
        step(m, temp=84.2 + EMERGENCY_TOLERANCE_C - 0.01)
        assert not m.had_emergency
        step(m, temp=84.2 + EMERGENCY_TOLERANCE_C + 0.01)
        assert m.had_emergency
        assert m.emergency_s == pytest.approx(1e-3)

    def test_max_temp_tracked(self):
        m = make()
        step(m, temp=70.0)
        step(m, temp=83.0)
        step(m, temp=79.0)
        assert m.max_temp_c == pytest.approx(83.0)


class TestValidation:
    def test_core_count(self):
        with pytest.raises(ValueError):
            MetricsAccumulator(n_cores=0, threshold_c=84.2)

    def test_wrong_width(self):
        m = make(n_cores=4)
        with pytest.raises(ValueError):
            m.record_step(1e-3, [0.0], [0.0], [False], [0.0], 50.0)
