"""Tests for the Table 4 workload definitions."""

import pytest

from repro.sim.workloads import (
    ALL_WORKLOADS,
    EXPECTED_MIX_LABELS,
    Workload,
    get_workload,
    workload_names,
)


class TestTable4:
    def test_twelve_workloads(self):
        assert len(ALL_WORKLOADS) == 12

    def test_four_programs_each(self):
        for w in ALL_WORKLOADS:
            assert len(w.benchmarks) == 4

    def test_exact_benchmark_lists(self):
        """Spot-check rows of Table 4 verbatim."""
        assert get_workload("workload1").benchmarks == ("gcc", "gzip", "mcf", "vpr")
        assert get_workload("workload7").benchmarks == (
            "gzip", "twolf", "ammp", "lucas",
        )
        assert get_workload("workload12").benchmarks == (
            "art", "lucas", "mgrid", "sixtrack",
        )

    def test_mix_labels_match_table4(self):
        """The int/fp composition column of Table 4."""
        for w in ALL_WORKLOADS:
            assert w.mix_label == EXPECTED_MIX_LABELS[w.name], w.name

    def test_spectrum_covers_all_mixes(self):
        labels = {w.mix_label for w in ALL_WORKLOADS}
        assert labels == {"IIII", "IIIF", "IIFF", "IFFF", "FFFF"}

    def test_label_format(self):
        w = get_workload("workload7")
        assert w.label == "gzip-twolf-ammp-lucas (IIFF)"


class TestLookup:
    def test_by_name(self):
        assert get_workload("workload3").name == "workload3"

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_workload("workload99")

    def test_names_helper(self):
        names = workload_names()
        assert names[0] == "workload1"
        assert len(names) == 12

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            Workload("bad", ("gzip", "gzip", "gzip", "quake"))
