"""Fleet-vs-scalar equivalence: the batched engine's acceptance bar.

:class:`~repro.sim.fleet.FleetEngine` is a pure batching optimization —
for any eligible batch, every member's result must be **bit-identical**
to running that member alone through the scalar
:class:`~repro.sim.engine.ThermalTimingSimulator`: all RunResult fields,
final thermal state, per-process counters and positions, and sampled
telemetry series. These tests enforce that across the full 12-policy
taxonomy, under permutations and slicings of the batch, and (via
Hypothesis, when available) over randomized batch sizes, durations,
thresholds, dt values and policy mixes.
"""

import dataclasses
from dataclasses import fields, replace

import numpy as np
import pytest

from repro.core.taxonomy import ALL_POLICY_SPECS, spec_by_key
from repro.faults.guards import GuardConfig
from repro.obs.telemetry import TelemetrySampler
from repro.sim.bench import _bench_fault_plan
from repro.sim.engine import SimulationConfig, ThermalTimingSimulator
from repro.sim.fleet import FleetEngine, FleetIncompatibleError, fleet_blockers
from repro.sim.runner import ParallelRunner, ResultCache, RunPoint
from repro.sim.workloads import get_workload
from repro.uarch.config import MachineConfig

W7 = get_workload("workload7")
CFG = SimulationConfig(duration_s=0.02)


def scalar_fields(result) -> dict:
    """Every RunResult field except the attachments compared separately."""
    return {
        f.name: getattr(result, f.name)
        for f in fields(result)
        if f.name not in ("series", "events")
    }


def scalar_run(workload, spec, config, telemetry=None):
    """One member's reference run through the scalar engine."""
    sim = ThermalTimingSimulator(
        workload.benchmarks, spec, config, telemetry=telemetry
    )
    return sim, sim.run()


def assert_member_matches_scalar(fleet_result, member_sim, workload, spec, config):
    """Bitwise comparison of one fleet member against a fresh scalar run."""
    ref_sim, ref = scalar_run(workload, spec, config)
    fr = scalar_fields(fleet_result)
    fr["workload"] = ref.workload  # fleet tags the workload name
    assert fr == scalar_fields(ref)
    np.testing.assert_array_equal(
        member_sim.thermal.temperatures, ref_sim.thermal.temperatures
    )
    for pf, pr in zip(
        member_sim.scheduler.processes, ref_sim.scheduler.processes
    ):
        assert pf.position == pr.position
        assert pf.counters.instructions == pr.counters.instructions
        assert pf.counters.int_rf_accesses == pr.counters.int_rf_accesses
        assert pf.counters.fp_rf_accesses == pr.counters.fp_rf_accesses
        assert pf.counters.cycles == pr.counters.cycles
        assert pf.counters.adjusted_cycles == pr.counters.adjusted_cycles


class TestTaxonomyBitIdentity:
    """The tentpole guarantee: batch-of-N == N scalar runs, exactly."""

    def test_all_policies_in_one_batch(self):
        """One batch holding the unthrottled config plus all 12 taxonomy
        policies reproduces each scalar run bit for bit."""
        specs = [None] + list(ALL_POLICY_SPECS)
        members = [(W7, spec, CFG) for spec in specs]
        engine = FleetEngine(members)
        results = engine.run()
        assert len(results) == len(members)
        for member, result, spec in zip(engine.members, results, specs):
            assert_member_matches_scalar(result, member.sim, W7, spec, CFG)

    def test_results_in_input_order_and_tagged(self):
        specs = [spec_by_key("distributed-dvfs-none"), None]
        results = FleetEngine([(W7, s, CFG) for s in specs]).run()
        assert all(r.workload == W7.name for r in results)
        assert results[0].policy == specs[0].name

    def test_unthrottled_members_take_fused_path(self):
        engine = FleetEngine([(W7, None, CFG), (W7, None, CFG)])
        engine.run()
        assert all(m.fused for m in engine.members)
        assert all(m.sim.last_run_fused for m in engine.members)

    def test_mixed_durations_retire_members_in_place(self):
        """Members with different horizons share one lockstep group; the
        shorter ones retire early and still match their scalar runs."""
        spec = spec_by_key("distributed-dvfs-none")
        configs = [
            replace(CFG, duration_s=d) for d in (0.02, 0.008, 0.014)
        ]
        members = [(W7, spec, cfg) for cfg in configs]
        engine = FleetEngine(members)
        for result, member, cfg in zip(engine.run(), engine.members, configs):
            assert_member_matches_scalar(result, member.sim, W7, spec, cfg)

    def test_telemetry_series_identical_to_scalar(self):
        """A sampler attached to a fleet member observes exactly the
        series a scalar run would produce — times and every column."""
        spec = spec_by_key("distributed-dvfs-sensor")
        periods = (0.5e-3, 0.25e-3, 1.0e-3)
        specs = [spec, None, spec_by_key("global-stop-go-counter")]
        members = [(W7, s, CFG) for s in specs]
        samplers = [TelemetrySampler(p) for p in periods]
        fleet_results = FleetEngine(members, telemetry=samplers).run()

        for s, period, sampler, fres in zip(
            specs, periods, samplers, fleet_results
        ):
            ref_sampler = TelemetrySampler(period)
            _, ref = scalar_run(W7, s, CFG, telemetry=ref_sampler)
            assert sampler.series is not None
            assert sampler.series.times == ref_sampler.series.times
            assert sampler.series.columns == ref_sampler.series.columns
            assert fres.telemetry == ref.telemetry


class TestBatchStructureInvariance:
    """Satellite: batch composition must never leak into results."""

    SPECS = [
        None,
        spec_by_key("distributed-dvfs-none"),
        spec_by_key("global-stop-go-none"),
        spec_by_key("distributed-dvfs-counter"),
        None,
        spec_by_key("distributed-stop-go-none"),
    ]

    def _run(self, specs):
        return FleetEngine([(W7, s, CFG) for s in specs]).run()

    def test_permutation_invariance(self):
        """Reordering the batch permutes the results and nothing else."""
        perm = [3, 0, 5, 1, 4, 2]
        base = self._run(self.SPECS)
        permuted = self._run([self.SPECS[i] for i in perm])
        for out_pos, in_pos in enumerate(perm):
            assert scalar_fields(permuted[out_pos]) == scalar_fields(
                base[in_pos]
            )

    def test_batch_slicing_invariance(self):
        """Splitting one batch into two yields identical results."""
        whole = self._run(self.SPECS)
        first = self._run(self.SPECS[:3])
        second = self._run(self.SPECS[3:])
        for a, b in zip(whole, first + second):
            assert scalar_fields(a) == scalar_fields(b)

    def test_singleton_batch_matches_scalar(self):
        spec = spec_by_key("global-dvfs-none")
        engine = FleetEngine([(W7, spec, CFG)])
        (result,) = engine.run()
        assert_member_matches_scalar(
            result, engine.members[0].sim, W7, spec, CFG
        )


class TestFleetEligibility:
    """Satellite: ineligible members are refused with a clear error."""

    def test_guards_block(self):
        cfg = replace(CFG, guard=GuardConfig())
        assert "sensor-guards" in fleet_blockers(cfg)
        with pytest.raises(FleetIncompatibleError) as excinfo:
            FleetEngine([(W7, None, CFG), (W7, None, cfg)])
        assert "member 1" in str(excinfo.value)
        assert "sensor-guards" in str(excinfo.value)

    def test_other_blockers(self):
        assert "hardware-trip" in fleet_blockers(
            replace(CFG, hardware_trip=True)
        )
        assert "record-series" in fleet_blockers(
            replace(CFG, record_series=True)
        )
        assert fleet_blockers(CFG) == ()

    def test_stochastic_configs_are_eligible(self):
        """Fault plans and sensor noise batch via stream replay — they
        are no longer fleet blockers."""
        assert fleet_blockers(
            replace(CFG, fault_plan=_bench_fault_plan(CFG.duration_s))
        ) == ()
        assert fleet_blockers(replace(CFG, sensor_noise_std_c=0.5)) == ()

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            FleetEngine([])

    def test_telemetry_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FleetEngine([(W7, None, CFG)], telemetry=[None, None])


class TestRunnerIntegration:
    """Satellite: the fleet backend plugs into ParallelRunner cleanly."""

    def _points(self, n=4):
        specs = [None, spec_by_key("distributed-dvfs-none")]
        return [
            RunPoint(
                W7,
                specs[i % len(specs)],
                replace(CFG, threshold_c=80.0 + 0.5 * i),
            )
            for i in range(n)
        ]

    def test_backend_fleet_matches_pool(self):
        points = self._points()
        pool = ParallelRunner(jobs=1, backend="pool").run_points(points)
        fleet = ParallelRunner(jobs=1, backend="fleet").run_points(points)
        for a, b in zip(pool, fleet):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_fleet_results_hit_scalar_cache_keys(self, tmp_path):
        """Fleet-simulated results land under the same cache keys the
        scalar path computes: a warm pool rerun executes nothing."""
        points = self._points()
        first = ParallelRunner(
            cache=ResultCache(tmp_path), version="v", backend="fleet"
        )
        cold = first.run_points(points)
        assert first.stats.simulated == len(points)

        second = ParallelRunner(
            cache=ResultCache(tmp_path), version="v", backend="pool"
        )
        warm = second.run_points(points)
        assert second.stats.simulated == 0
        assert second.stats.cache_hits == len(points)
        assert warm == cold

    def test_ineligible_points_fall_back_transparently(self):
        """A batch mixing eligible and guarded points still returns
        results identical to the pool path, in input order."""
        guarded = RunPoint(
            W7,
            spec_by_key("distributed-dvfs-none"),
            replace(CFG, guard=GuardConfig()),
        )
        points = self._points(3) + [guarded]
        pool = ParallelRunner(jobs=1, backend="pool").run_points(points)
        fleet = ParallelRunner(jobs=1, backend="fleet").run_points(points)
        for a, b in zip(pool, fleet):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(backend="thread")


class TestStochasticBitIdentity:
    """Tentpole: stochastic members (fault plans, sensor noise) batch
    bit-identically via per-member RNG stream replay."""

    def test_severity_plans_match_scalar(self):
        """One batch holding every robustness severity x a policy mix
        reproduces each faulted scalar run bit for bit — metrics and
        FaultSummary counters alike (``scalar_fields`` covers both)."""
        from repro.experiments.robustness import SEVERITIES, severity_plan

        specs = [
            spec_by_key("distributed-dvfs-none"),
            spec_by_key("global-stop-go-none"),
            spec_by_key("distributed-dvfs-sensor"),
            None,
        ]
        members = []
        for sev in SEVERITIES:
            plan = severity_plan(sev, CFG.duration_s)
            for spec in specs:
                members.append(
                    (W7, spec, replace(CFG, fault_plan=plan, seed=9))
                )
        engine = FleetEngine(members)
        for result, member, (_, spec, cfg) in zip(
            engine.run(), engine.members, members
        ):
            assert_member_matches_scalar(result, member.sim, W7, spec, cfg)

    def test_sensor_noise_matches_scalar(self):
        """Noisy members replay the scalar per-chip noise stream: one
        normal draw per step, only where the scalar engine would draw."""
        spec = spec_by_key("distributed-dvfs-none")
        members = [
            (W7, spec, replace(CFG, sensor_noise_std_c=1.5, seed=2)),
            (W7, None, replace(CFG, sensor_noise_std_c=1.5, seed=2)),
            (W7, spec, replace(CFG, sensor_noise_std_c=0.25, seed=3)),
            (W7, spec, CFG),
        ]
        engine = FleetEngine(members)
        for result, member, (_, s, cfg) in zip(
            engine.run(), engine.members, members
        ):
            assert_member_matches_scalar(result, member.sim, W7, s, cfg)

    def test_faults_noise_and_telemetry_together(self):
        """A faulted, noisy member with a sampler attached produces the
        scalar run's exact telemetry series (fault counters included)."""
        from repro.experiments.robustness import severity_plan

        spec = spec_by_key("distributed-dvfs-none")
        cfg = replace(
            CFG,
            fault_plan=severity_plan("severe", CFG.duration_s),
            sensor_noise_std_c=1.0,
            seed=13,
        )
        sampler = TelemetrySampler(0.5e-3)
        (fres,) = FleetEngine([(W7, spec, cfg)], telemetry=[sampler]).run()
        ref_sampler = TelemetrySampler(0.5e-3)
        _, ref = scalar_run(W7, spec, cfg, telemetry=ref_sampler)
        assert fres.faults == ref.faults
        assert sampler.series.times == ref_sampler.series.times
        assert sampler.series.columns == ref_sampler.series.columns
        assert fres.telemetry == ref.telemetry


class TestRunnerChunkingAndDuplicates:
    """Satellites: index-keyed fleet outputs and chunked streaming."""

    def test_duplicate_points_keep_distinct_outputs(self):
        """Regression: two identical points in one uncached fleet batch
        must each get their own output entry (results were previously
        collected in a dict keyed by cache key, collapsing duplicates
        and mis-attributing spans)."""
        runner = ParallelRunner(jobs=1, cache=None, backend="fleet")
        point = RunPoint(W7, spec_by_key("distributed-dvfs-none"), CFG)
        out = runner._execute_fleet([("same-key", point), ("same-key", point)])
        assert len(out) == 2
        (tag_a, (res_a, span_a, *_)), (tag_b, (res_b, span_b, *_)) = out
        assert tag_a == tag_b == ("same-key", point)
        assert res_a is not res_b
        assert scalar_fields(res_a) == scalar_fields(res_b)
        assert span_a is not None and span_b is not None

    def test_chunked_matches_unchunked(self):
        """Streaming a campaign through the engine in fixed-size chunks
        changes memory use, never results."""
        from repro.experiments.robustness import severity_plan

        specs = [None, spec_by_key("distributed-dvfs-none")]
        points = [
            RunPoint(
                W7,
                specs[i % 2],
                replace(
                    CFG,
                    threshold_c=80.0 + 0.25 * i,
                    fault_plan=severity_plan("moderate", CFG.duration_s),
                    seed=i,
                ),
            )
            for i in range(7)
        ]
        whole = ParallelRunner(
            jobs=1, cache=None, backend="fleet"
        ).run_points(points)
        chunked = ParallelRunner(
            jobs=1, cache=None, backend="fleet", fleet_chunk=3
        ).run_points(points)
        for a, b in zip(whole, chunked):
            assert scalar_fields(a) == scalar_fields(b)

    def test_fleet_chunk_validated(self):
        with pytest.raises(ValueError):
            ParallelRunner(backend="fleet", fleet_chunk=0)


class TestScenarioBitIdentity:
    """Many-core scenarios batch bit-identically: mesh16 and the
    heterogeneous biglittle4+4 chip (whose per-class DVFS floors drive
    the PIBank's vector ``output_min`` path) must match scalar runs,
    and the fleet backend must match pool on full 16-core RunPoints."""

    def _members(self, scenario_name, spec_keys, duration_s=0.004):
        from repro.scenarios import get_scenario
        from repro.sim.workloads import tile_workload

        scenario = get_scenario(scenario_name)
        workload = tile_workload(W7, scenario.n_cores)
        cfg = SimulationConfig(
            duration_s=duration_s,
            machine=scenario.machine_config(),
            scenario=scenario,
        )
        return [
            (workload, spec_by_key(k) if k else None, cfg) for k in spec_keys
        ], workload

    def test_mesh16_members_match_scalar(self):
        members, workload = self._members(
            "mesh16",
            [None, "distributed-dvfs-none", "global-stop-go-none"],
        )
        engine = FleetEngine(members)
        for result, member, (_, spec, cfg) in zip(
            engine.run(), engine.members, members
        ):
            assert_member_matches_scalar(
                result, member.sim, workload, spec, cfg
            )

    def test_biglittle_heterogeneous_floors_match_scalar(self):
        members, workload = self._members(
            "biglittle4+4",
            ["distributed-dvfs-none", "global-dvfs-none", None],
        )
        engine = FleetEngine(members)
        for result, member, (_, spec, cfg) in zip(
            engine.run(), engine.members, members
        ):
            assert_member_matches_scalar(
                result, member.sim, workload, spec, cfg
            )

    def test_mixed_scenario_batch_groups_cleanly(self):
        """One batch mixing the default 4-core chip with mesh16 members
        must place them on distinct substrates and still match scalar."""
        mesh_members, mesh_wl = self._members(
            "mesh16", ["distributed-dvfs-none"]
        )
        spec = spec_by_key("distributed-dvfs-none")
        members = [(W7, spec, CFG)] + mesh_members
        engine = FleetEngine(members)
        results = engine.run()
        assert_member_matches_scalar(
            results[0], engine.members[0].sim, W7, spec, CFG
        )
        _, mspec, mcfg = mesh_members[0]
        assert_member_matches_scalar(
            results[1], engine.members[1].sim, mesh_wl, mspec, mcfg
        )

    def test_backend_fleet_matches_pool_on_scenarios(self):
        """The ISSUE acceptance spec: 16-core scenario RunPoints through
        ``backend="fleet"`` equal ``backend="pool"`` in every field."""
        from repro.scenarios import get_scenario
        from repro.sim.workloads import tile_workload

        points = []
        for name in ("mesh16", "biglittle4+4"):
            scenario = get_scenario(name)
            workload = tile_workload(W7, scenario.n_cores)
            for threshold in (83.0, 84.2):
                points.append(
                    RunPoint(
                        workload,
                        spec_by_key("distributed-dvfs-none"),
                        SimulationConfig(
                            duration_s=0.004,
                            machine=scenario.machine_config(),
                            scenario=scenario,
                            threshold_c=threshold,
                        ),
                    )
                )
        pool = ParallelRunner(jobs=1, backend="pool").run_points(points)
        fleet = ParallelRunner(jobs=1, backend="fleet").run_points(points)
        for a, b in zip(pool, fleet):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)


# -- Hypothesis property tests (skipped when hypothesis is absent) --------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

#: Policy pool for random batch composition: both throttle families,
#: both scopes, with and without migration, plus unthrottled.
PROPERTY_SPEC_KEYS = [
    None,
    "distributed-dvfs-none",
    "global-dvfs-none",
    "distributed-stop-go-none",
    "global-stop-go-counter",
    "distributed-dvfs-sensor",
]

member_strategy = st.tuples(
    st.sampled_from(PROPERTY_SPEC_KEYS),
    st.sampled_from([0.004, 0.006, 0.008]),
    st.floats(min_value=78.0, max_value=85.0, allow_nan=False),
)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(batch=st.lists(member_strategy, min_size=1, max_size=5))
def test_property_random_batches_match_scalar(batch):
    """Any random mix of policies, durations and thresholds batches
    bit-identically to per-member scalar runs."""
    members = []
    for spec_key, duration, threshold in batch:
        spec = spec_by_key(spec_key) if spec_key else None
        cfg = SimulationConfig(duration_s=duration, threshold_c=threshold)
        members.append((W7, spec, cfg))
    engine = FleetEngine(members)
    for result, member, (spec_key, _, _) in zip(
        engine.run(), engine.members, batch
    ):
        spec = spec_by_key(spec_key) if spec_key else None
        assert_member_matches_scalar(
            result, member.sim, W7, spec, member.sim.config
        )


@settings(max_examples=4, deadline=None)
@given(
    cycles=st.sampled_from([80_000, 100_000, 125_000]),
    spec_key=st.sampled_from([None, "distributed-dvfs-none"]),
)
def test_property_dt_variants_match_scalar(cycles, spec_key):
    """Batches on machines with non-default dt (trace_sample_cycles)
    still match the scalar engine exactly."""
    machine = MachineConfig(trace_sample_cycles=cycles)
    cfg = SimulationConfig(duration_s=0.005, machine=machine)
    spec = spec_by_key(spec_key) if spec_key else None
    engine = FleetEngine([(W7, spec, cfg), (W7, spec, cfg)])
    for result, member in zip(engine.run(), engine.members):
        assert_member_matches_scalar(result, member.sim, W7, spec, cfg)


#: Stochastic fault-plan generator: dropout + spike + DVFS-reject at
#: random severities, windows and modes — the Monte-Carlo campaign
#: shape the stream-replay layer exists for.
def _stochastic_plan(duration, core, drop_mode, spike_prob, reject_prob):
    from repro.faults.models import (
        DropoutFault,
        DVFSRejectFault,
        FaultPlan,
        SpikeFault,
    )

    return FaultPlan(
        name="property",
        faults=(
            DropoutFault(
                core=core,
                start_s=0.2 * duration,
                end_s=0.8 * duration,
                mode=drop_mode,
            ),
            SpikeFault(
                start_s=0.0, end_s=duration,
                magnitude_c=9.0, prob=spike_prob,
            ),
            DVFSRejectFault(
                start_s=0.1 * duration, end_s=0.9 * duration,
                prob=reject_prob,
            ),
        ),
    )


stochastic_member = st.tuples(
    st.sampled_from(
        ["distributed-dvfs-none", "global-dvfs-none",
         "distributed-stop-go-none", "distributed-dvfs-sensor", None]
    ),
    st.integers(min_value=0, max_value=3),        # dropout core
    st.sampled_from(["last-good", "nan"]),        # dropout mode
    st.sampled_from([0.01, 0.05, 0.2]),           # spike prob
    st.sampled_from([0.25, 0.5, 0.9]),            # dvfs-reject prob
    st.integers(min_value=0, max_value=2**31 - 1),  # seed
)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(batch=st.lists(stochastic_member, min_size=1, max_size=4))
def test_property_stochastic_plans_match_scalar(batch):
    """Tentpole acceptance property: any batch of members with random
    stochastic fault plans (dropout/spike/dvfs-reject at random
    severities and seeds) is bit-identical — metrics, FaultSummary
    counters and telemetry — to the same points run scalar."""
    duration = 0.006
    members = []
    for spec_key, core, mode, spike_p, reject_p, seed in batch:
        spec = spec_by_key(spec_key) if spec_key else None
        cfg = SimulationConfig(
            duration_s=duration,
            fault_plan=_stochastic_plan(duration, core, mode, spike_p, reject_p),
            seed=seed,
        )
        members.append((W7, spec, cfg))
    engine = FleetEngine(members)
    for result, member, (_, spec, cfg) in zip(
        engine.run(), engine.members, members
    ):
        assert_member_matches_scalar(result, member.sim, W7, spec, cfg)
