"""Tests for the generic sweep helpers."""

import pytest

from repro.core.taxonomy import spec_by_key
from repro.sim.engine import SimulationConfig
from repro.sim.sweep import best_point, sweep_config_field, sweep_policies
from repro.sim.workloads import get_workload

CFG = SimulationConfig(duration_s=0.02)
W7 = get_workload("workload7")
DDV = spec_by_key("distributed-dvfs-none")


class TestSweepConfigField:
    def test_threshold_sweep_monotone(self):
        points = sweep_config_field(
            "threshold_c", [84.2, 100.0], DDV, [W7], CFG
        )
        assert len(points) == 2
        assert points[1].mean_duty_cycle >= points[0].mean_duty_cycle

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown SimulationConfig field"):
            sweep_config_field("clock_speed", [1.0], DDV, [W7], CFG)

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            sweep_config_field("threshold_c", [], DDV, [W7], CFG)

    def test_empty_workloads_rejected(self):
        with pytest.raises(ValueError):
            sweep_config_field("threshold_c", [84.2], DDV, [], CFG)

    def test_point_aggregates(self):
        (point,) = sweep_config_field("threshold_c", [84.2], DDV, [W7], CFG)
        r = point.results["workload7"]
        assert point.mean_bips == pytest.approx(r.bips)
        assert point.mean_duty_cycle == pytest.approx(r.duty_cycle)
        assert point.total_emergency_s == pytest.approx(r.emergency_s)


class TestSweepPolicies:
    def test_policy_sweep(self):
        points = sweep_policies(
            [None, spec_by_key("distributed-stop-go-none"), DDV], [W7], CFG
        )
        values = [p.value for p in points]
        assert values == ["unthrottled", "distributed-stop-go-none",
                          "distributed-dvfs-none"]

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            sweep_policies([], [W7], CFG)


class TestBestPoint:
    def test_safe_point_preferred(self):
        points = sweep_policies(
            [None, DDV], [W7], CFG
        )
        # Unthrottled overheats; DVFS is safe and must win by default.
        best = best_point(points)
        assert best.value == "distributed-dvfs-none"

    def test_unsafe_allowed_when_requested(self):
        points = sweep_policies([None, DDV], [W7], CFG)
        best = best_point(points, require_safe=False)
        assert best.value == "unthrottled"  # raw throughput winner

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            best_point([])


class TestEmptySweepPoint:
    def test_mean_bips_raises_clear_error_on_empty_results(self):
        from repro.sim.sweep import SweepPoint

        point = SweepPoint(value=84.2, results={})
        with pytest.raises(ValueError, match="no workload results"):
            point.mean_bips

    def test_mean_duty_cycle_raises_clear_error_on_empty_results(self):
        from repro.sim.sweep import SweepPoint

        point = SweepPoint(value="unthrottled", results={})
        with pytest.raises(ValueError, match="no workload results"):
            point.mean_duty_cycle

    def test_error_is_not_zero_division(self):
        from repro.sim.sweep import SweepPoint

        point = SweepPoint(value=1, results={})
        try:
            point.mean_bips
        except ZeroDivisionError:  # pragma: no cover - the old failure mode
            pytest.fail("empty SweepPoint still raises ZeroDivisionError")
        except ValueError:
            pass
