"""Micro-tests of the engine's overhead accounting.

The paper charges 10 us per accepted DVFS transition and 100 us per core
involved in a migration; these tests verify the charges actually land in
the duty-cycle arithmetic.
"""

import pytest

from repro.core.taxonomy import spec_by_key
from repro.sim.engine import SimulationConfig, ThermalTimingSimulator, _TrendWindow
from repro.sim.workloads import get_workload
from repro.thermal.layouts import HOTSPOT_UNITS

W7 = get_workload("workload7")


class TestTransitionPenalty:
    def test_transitions_counted_and_charged(self):
        cfg = SimulationConfig(duration_s=0.03)
        sim = ThermalTimingSimulator(
            W7.benchmarks, spec_by_key("distributed-dvfs-none"), cfg
        )
        result = sim.run()
        assert result.dvfs_transitions > 0
        # Duty cannot be perfect when transitions are being charged and
        # the workload is hot enough to throttle.
        assert result.duty_cycle < 1.0

    def test_zero_penalty_machine_runs_faster(self):

        from repro.uarch.config import DVFSConfig, MachineConfig

        cheap_machine = MachineConfig(
            dvfs=DVFSConfig(transition_penalty_s=1e-9)
        )
        cfg_cheap = SimulationConfig(duration_s=0.03, machine=cheap_machine)
        cfg_normal = SimulationConfig(duration_s=0.03)
        spec = spec_by_key("distributed-dvfs-none")
        fast = ThermalTimingSimulator(W7.benchmarks, spec, cfg_cheap).run()
        normal = ThermalTimingSimulator(W7.benchmarks, spec, cfg_normal).run()
        # A near-free PLL can only help (equal within noise at worst).
        assert fast.bips >= normal.bips * 0.995


class TestMigrationPenalty:
    def test_migration_stalls_charged(self):
        cfg = SimulationConfig(duration_s=0.05)
        spec = spec_by_key("distributed-stop-go-counter")
        sim = ThermalTimingSimulator(W7.benchmarks, spec, cfg)
        result = sim.run()
        assert result.migrations > 0
        # 100 us per involved core: the stall ledger saw at least that.
        # (Stop-go freezes are not stalls; only overheads are.)
        # Reconstruct from the scheduler history.
        total_involved = sum(
            len(r.cores_involved) for r in sim.scheduler.migration_history
        )
        assert total_involved >= result.migrations

    def test_expensive_migration_discourages_benefit(self):
        from repro.uarch.config import MachineConfig

        spec = spec_by_key("distributed-stop-go-counter")
        cheap_cfg = SimulationConfig(duration_s=0.04)
        pricey_machine = MachineConfig(migration_penalty_s=5e-3)  # 50x cost
        pricey_cfg = SimulationConfig(duration_s=0.04, machine=pricey_machine)
        cheap = ThermalTimingSimulator(W7.benchmarks, spec, cheap_cfg).run()
        pricey = ThermalTimingSimulator(W7.benchmarks, spec, pricey_cfg).run()
        assert pricey.bips < cheap.bips


class TestConservation:
    def test_instructions_conserved_across_migrations(self):
        """Total retired instructions equal the sum of per-process counter
        totals even while threads hop cores (no work lost or duplicated in
        the hand-off)."""
        cfg = SimulationConfig(duration_s=0.05)
        spec = spec_by_key("distributed-dvfs-counter")
        sim = ThermalTimingSimulator(W7.benchmarks, spec, cfg)
        result = sim.run()
        counter_total = sum(
            p.counters.instructions for p in sim.scheduler.processes
        )
        assert counter_total == pytest.approx(result.instructions, rel=1e-9)

    def test_trace_positions_match_adjusted_cycles(self):
        """Each process's trace position (full-speed samples) agrees with
        its adjusted-cycle counter (the same quantity in other units)."""
        cfg = SimulationConfig(duration_s=0.03)
        spec = spec_by_key("distributed-dvfs-none")
        sim = ThermalTimingSimulator(W7.benchmarks, spec, cfg)
        sim.run()
        for proc in sim.scheduler.processes:
            samples_from_cycles = (
                proc.counters.adjusted_cycles / proc.trace.sample_cycles
            )
            assert proc.position == pytest.approx(
                samples_from_cycles, rel=1e-6
            )


class TestTrendWindowGradient:
    """The dT/dt fed to sensor-based migration must be unbiased."""

    @staticmethod
    def _readings(temp: float):
        return [{unit: temp for unit in HOTSPOT_UNITS}]

    def test_linear_ramp_recovered_exactly(self):
        """n samples of a linear ramp span (n-1)*dt, not n*dt: a 100 C/s
        ramp must read as 100 C/s, not 100*(n-1)/n."""
        window = _TrendWindow(n_cores=1, n_units=len(HOTSPOT_UNITS))
        dt = 1e-3
        slope = 100.0
        for k in range(5):
            window.accumulate(self._readings(50.0 + slope * k * dt), dt)
        assert window.gradient(0, 0) == pytest.approx(slope, rel=1e-12)

    def test_two_samples(self):
        window = _TrendWindow(n_cores=1, n_units=len(HOTSPOT_UNITS))
        dt = 2e-3
        window.accumulate(self._readings(60.0), dt)
        window.accumulate(self._readings(61.0), dt)
        assert window.gradient(0, 0) == pytest.approx(1.0 / dt)

    def test_degenerate_windows_are_zero(self):
        window = _TrendWindow(n_cores=1, n_units=len(HOTSPOT_UNITS))
        assert window.gradient(0, 0) == 0.0
        window.accumulate(self._readings(70.0), 1e-3)
        assert window.gradient(0, 0) == 0.0


class TestFrozenStallAccounting:
    """Overhead stalls overlapping a freeze still count as overhead."""

    def test_stall_ledger_conserves_charged_penalties(self):
        """Under biased sensors + the hardware trip, the PI keeps issuing
        PLL transitions while PROCHOT freezes the chip, so penalty windows
        overlap freezes. Every charged second must still land in
        ``stall_time_s`` (minus only the tail beyond the run's end)."""
        cfg = SimulationConfig(
            duration_s=0.05, sensor_offset_c=-3.0, hardware_trip=True
        )
        w3 = get_workload("workload3")
        sim = ThermalTimingSimulator(
            w3.benchmarks, spec_by_key("distributed-dvfs-none"), cfg
        )
        result = sim.run()
        assert result.prochot_events > 0, "scenario must exercise freezes"
        charged = sum(
            a.transitions for a in sim.actuators
        ) * cfg.machine.dvfs.transition_penalty_s
        n_steps = max(1, round(cfg.duration_s / sim.dt))
        end = n_steps * sim.dt
        unserved = sum(max(until - end, 0.0) for until in sim._stall_until)
        assert sim.metrics.stall_time_s == pytest.approx(
            charged - unserved, abs=1e-12
        )

    def test_stall_ledger_with_migrations(self):
        """Same conservation when migration context switches also charge
        the ledger (100 us per involved core)."""
        cfg = SimulationConfig(duration_s=0.05)
        sim = ThermalTimingSimulator(
            W7.benchmarks, spec_by_key("distributed-stop-go-counter"), cfg
        )
        result = sim.run()
        assert result.migrations > 0
        involved = sum(
            len(r.cores_involved) for r in sim.scheduler.migration_history
        )
        charged = involved * cfg.machine.migration_penalty_s
        n_steps = max(1, round(cfg.duration_s / sim.dt))
        end = n_steps * sim.dt
        unserved = sum(max(until - end, 0.0) for until in sim._stall_until)
        assert sim.metrics.stall_time_s == pytest.approx(
            charged - unserved, abs=1e-12
        )


class TestStopGoPowerModel:
    def test_frozen_core_still_leaks(self):
        """Stop-go preserves state: dynamic power stops, leakage does not,
        so a globally frozen chip stays well above ambient."""
        cfg = SimulationConfig(duration_s=0.04, record_series=True)
        spec = spec_by_key("global-stop-go-none")
        sim = ThermalTimingSimulator(W7.benchmarks, spec, cfg)
        result = sim.run()
        series = result.series
        # Find a fully frozen step (all effective scales zero).
        import numpy as np

        frozen_steps = np.all(series.scales < 1e-9, axis=1)
        assert frozen_steps.any(), "global stop-go never froze the chip"
        idx = int(np.flatnonzero(frozen_steps)[-1])
        temps = [series.hotspot_temps[u][idx].min() for u in ("intreg", "fpreg")]
        assert min(temps) > cfg.package.ambient_c + 3.0
