"""Integration tests for run observability (events + profiler).

Two properties matter:

* **fidelity** — per-type event counts agree with the scalar counters
  the engine has always reported on :class:`RunResult`;
* **non-perturbation** — a run with observability attached produces a
  result bit-identical to the same run without it (capture reads state,
  never feeds back).
"""

from dataclasses import fields, replace

from repro.core.taxonomy import spec_by_key
from repro.obs import ENGINE_SECTIONS, RunEventLog, StepProfiler
from repro.sim.engine import SimulationConfig, run_workload
from repro.sim.runner import ParallelRunner, RunPoint
from repro.sim.workloads import get_workload

W7 = get_workload("workload7")
W3 = get_workload("workload3")
CFG = SimulationConfig(duration_s=0.05)


def scalar_fields(result) -> dict:
    """Every RunResult field except the observability attachments."""
    return {
        f.name: getattr(result, f.name)
        for f in fields(result)
        if f.name not in ("series", "events")
    }


class TestEventCountInvariants:
    def test_dvfs_transitions_match(self):
        log = RunEventLog()
        result = run_workload(
            W7, spec_by_key("distributed-dvfs-none"), CFG, event_log=log
        )
        assert result.dvfs_transitions > 0
        assert log.count("dvfs-transition") == result.dvfs_transitions

    def test_stopgo_trips_and_migrations_match(self):
        log = RunEventLog()
        result = run_workload(
            W7, spec_by_key("distributed-stop-go-counter"), CFG, event_log=log
        )
        assert result.stopgo_trips > 0
        assert result.migrations > 0
        assert log.count("stopgo-trip") == result.stopgo_trips
        assert log.count("migration") == result.migrations
        # Every executed move belongs to a decision emitted beforehand.
        assert log.count("migration-decision") >= 1

    def test_prochot_trips_match(self):
        log = RunEventLog()
        cfg = replace(CFG, sensor_offset_c=-3.0, hardware_trip=True)
        result = run_workload(
            W3, spec_by_key("distributed-dvfs-none"), cfg, event_log=log
        )
        assert result.prochot_events > 0
        assert log.count("prochot-trip") == result.prochot_events

    def test_emergency_events_bracket_emergency_time(self):
        log = RunEventLog()
        cfg = replace(CFG, sensor_offset_c=-3.0)
        result = run_workload(
            W3, spec_by_key("distributed-dvfs-none"), cfg, event_log=log
        )
        assert result.emergency_s > 0
        assert log.count("emergency-enter") >= 1
        # Enters and exits alternate, starting with an enter.
        assert log.count("emergency-enter") - log.count("emergency-exit") in (0, 1)

    def test_os_tick_cadence(self):
        log = RunEventLog()
        run_workload(W7, spec_by_key("distributed-dvfs-none"), CFG, event_log=log)
        ticks = log.count("os-tick")
        assert 1 <= ticks <= CFG.duration_s / CFG.migration_period_s + 1

    def test_summary_attached_to_result(self):
        log = RunEventLog()
        result = run_workload(
            W7, spec_by_key("distributed-dvfs-none"), CFG, event_log=log
        )
        assert result.events is not None
        assert result.events.total == len(log)
        assert result.events.counts == log.counts()

    def test_events_chronologically_ordered(self):
        log = RunEventLog()
        run_workload(
            W7, spec_by_key("distributed-stop-go-counter"), CFG, event_log=log
        )
        times = [e.time_s for e in log]
        assert times == sorted(times)


class TestNonPerturbation:
    def test_instrumented_run_bit_identical(self):
        spec = spec_by_key("distributed-dvfs-sensor")
        plain = run_workload(W7, spec, CFG)
        instrumented = run_workload(
            W7, spec, CFG, event_log=RunEventLog(), profiler=StepProfiler()
        )
        assert scalar_fields(plain) == scalar_fields(instrumented)
        assert plain.events is None
        assert instrumented.events is not None

    def test_stopgo_instrumented_run_bit_identical(self):
        spec = spec_by_key("global-stop-go-none")
        plain = run_workload(W7, spec, CFG)
        instrumented = run_workload(W7, spec, CFG, event_log=RunEventLog())
        assert scalar_fields(plain) == scalar_fields(instrumented)


class TestProfiler:
    def test_engine_sections_reported(self):
        prof = StepProfiler()
        run_workload(W7, spec_by_key("distributed-dvfs-sensor"), CFG, profiler=prof)
        totals = prof.totals()
        assert set(totals) == set(ENGINE_SECTIONS)
        assert all(elapsed > 0 for elapsed in totals.values())

    def test_unthrottled_run_has_no_throttle_cost_only(self):
        """Even the unthrottled reference exercises sensors/power/thermal."""
        prof = StepProfiler()
        run_workload(W7, None, CFG, profiler=prof)
        totals = prof.totals()
        for section in ("sensors", "power", "thermal-step"):
            assert totals[section] > 0


class TestRunnerProfileSurfacing:
    def test_profiled_runner_collects_sections(self):
        runner = ParallelRunner(jobs=1, profile=True)
        points = [
            RunPoint(W7, spec_by_key("distributed-dvfs-none"), CFG),
            RunPoint(W7, spec_by_key("global-stop-go-none"), CFG),
        ]
        results = runner.run_points(points)
        assert len(results) == 2
        simulated = [r for r in runner.stats.reports if not r.cache_hit]
        assert all(r.sections for r in simulated)
        assert set(runner.stats.section_totals) == set(ENGINE_SECTIONS)
        assert "engine sections" in runner.stats.profile_summary()

    def test_profiled_results_identical_to_unprofiled(self):
        point = RunPoint(W7, spec_by_key("distributed-dvfs-none"), CFG)
        plain = ParallelRunner(jobs=1).run_points([point])[0]
        profiled = ParallelRunner(jobs=1, profile=True).run_points([point])[0]
        assert scalar_fields(plain) == scalar_fields(profiled)

    def test_profile_off_by_default(self):
        runner = ParallelRunner(jobs=1)
        runner.run_points([RunPoint(W7, None, SimulationConfig(duration_s=0.01))])
        assert runner.stats.section_totals == {}
        assert all(r.sections is None for r in runner.stats.reports)
