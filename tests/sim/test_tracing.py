"""Non-perturbation contract of tracing at the runner/engine layer.

The two invariants `docs/OBSERVABILITY.md` §0 promises for every
observer hold for the span layer too:

* a traced run's results are **bit-identical** to an untraced run —
  across the fused, stepwise, fleet and faulted execution paths;
* trace state never enters the result-cache key, so traced and
  untraced runs share one cache entry in both directions.

Plus the process-pool plumbing: `TraceContext` survives a real pickle
round trip through worker processes, and the spans that come back form
one connected tree.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace

from repro.core.taxonomy import BASELINE_SPEC, spec_by_key
from repro.obs.tracing import (
    KIND_EXECUTE,
    KIND_GROUP,
    KIND_POINT,
    KIND_SECTION,
    SpanRecorder,
    TraceContext,
    validate_trace,
)
from repro.sim.bench import _bench_fault_plan
from repro.sim.engine import SimulationConfig
from repro.sim.runner import (
    ParallelRunner,
    ResultCache,
    RunPoint,
    config_hash,
)
from repro.sim.workloads import get_workload

CFG = SimulationConfig(duration_s=0.005)
W7 = get_workload("workload7")
DVFS = spec_by_key("distributed-dvfs-none")


def tracing_points():
    """Fused (unthrottled), stepwise (dvfs) and faulted points."""
    return [
        RunPoint(W7, None, CFG),
        RunPoint(W7, DVFS, CFG),
        RunPoint(
            W7, BASELINE_SPEC,
            replace(CFG, fault_plan=_bench_fault_plan(CFG.duration_s)),
        ),
    ]


def as_dicts(results):
    return [dataclasses.asdict(r) for r in results]


class TestNonPerturbation:
    def test_traced_pool_run_is_bit_identical(self):
        """Fused, stepwise and faulted paths agree traced vs untraced."""
        points = tracing_points()
        plain = ParallelRunner(jobs=1, cache=None).run_points(points)
        tracer = SpanRecorder()
        traced = ParallelRunner(jobs=1, cache=None).run_points(
            points, tracer=tracer
        )
        assert as_dicts(plain) == as_dicts(traced)
        assert len(tracer) > 0

    def test_traced_fleet_run_is_bit_identical(self):
        points = [RunPoint(W7, None, CFG), RunPoint(W7, None, replace(
            CFG, threshold_c=90.0))]
        plain = ParallelRunner(
            jobs=1, cache=None, backend="fleet"
        ).run_points(points)
        tracer = SpanRecorder()
        traced = ParallelRunner(
            jobs=1, cache=None, backend="fleet"
        ).run_points(points, tracer=tracer)
        assert as_dicts(plain) == as_dicts(traced)
        kinds = {s.kind for s in tracer.spans()}
        assert KIND_GROUP in kinds
        assert KIND_POINT in kinds

    def test_trace_never_enters_the_cache_key(self, tmp_path):
        """Traced and untraced runs share cache entries both ways."""
        points = tracing_points()
        for point in points:
            assert config_hash(point, "v") == config_hash(point, "v")

        cold = ParallelRunner(
            jobs=1, cache=ResultCache(tmp_path), version="v"
        )
        cold_results = cold.run_points(points, tracer=SpanRecorder())
        assert cold.stats.simulated == len(points)

        # Untraced rerun hits every traced-run entry ...
        warm = ParallelRunner(
            jobs=1, cache=ResultCache(tmp_path), version="v"
        )
        warm_results = warm.run_points(points)
        assert warm.stats.simulated == 0
        assert warm.stats.cache_hits == len(points)
        assert as_dicts(cold_results) == as_dicts(warm_results)

        # ... and a traced rerun hits them too, with cache-hit spans.
        tracer = SpanRecorder()
        third = ParallelRunner(
            jobs=1, cache=ResultCache(tmp_path), version="v"
        )
        third_results = third.run_points(points, tracer=tracer)
        assert third.stats.simulated == 0
        assert as_dicts(third_results) == as_dicts(cold_results)
        hits = [
            s for s in tracer.spans() if s.attrs.get("cache") == "hit"
        ]
        assert len(hits) == len(points)
        assert all(s.elapsed_s == 0.0 for s in hits)


class TestProcessPoolPropagation:
    def test_context_survives_a_real_process_pool(self, tmp_path):
        """jobs=2 ships contexts out and spans back; the tree connects."""
        points = [
            RunPoint(W7, None, CFG),
            RunPoint(W7, DVFS, CFG),
        ]
        tracer = SpanRecorder()
        runner = ParallelRunner(jobs=2, cache=None, tracer=tracer)
        root = TraceContext.new()
        results = runner.run_points(points, trace=root)
        assert len(results) == len(points)

        spans = tracer.spans()
        kinds = {s.kind for s in spans}
        assert KIND_POINT in kinds
        assert KIND_SECTION in kinds
        # Every span belongs to the caller's trace and links back to it.
        assert {s.trace_id for s in spans} == {root.trace_id}
        point_spans = [s for s in spans if s.kind == KIND_POINT]
        assert len(point_spans) == len(points)
        assert {s.parent_id for s in point_spans} == {root.span_id}
        # Worker-recorded spans name worker pids, parented correctly.
        section_spans_ = [s for s in spans if s.kind == KIND_SECTION]
        point_ids = {s.span_id for s in point_spans}
        assert all(s.parent_id in point_ids for s in section_spans_)

    def test_standalone_traced_run_roots_itself(self):
        """With a tracer but no inbound context, a batch span roots all."""
        tracer = SpanRecorder()
        ParallelRunner(jobs=1, cache=None).run_points(
            [RunPoint(W7, None, CFG)], tracer=tracer
        )
        spans = tracer.spans()
        assert validate_trace(spans, root_kind=KIND_EXECUTE) == []

    def test_profiled_traced_run_still_bit_identical(self):
        """profile=True + tracing composes without drift."""
        points = [RunPoint(W7, DVFS, CFG)]
        plain = ParallelRunner(jobs=1, cache=None).run_points(points)
        traced = ParallelRunner(
            jobs=1, cache=None, profile=True
        ).run_points(points, tracer=SpanRecorder())
        assert as_dicts(plain) == as_dicts(traced)
