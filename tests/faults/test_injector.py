"""Tests for the runtime FaultInjector (determinism, windows, counters)."""

import numpy as np
import pytest

from repro.faults.injector import FaultInjector
from repro.faults.models import (
    CalibrationStepFault,
    DriftFault,
    DropoutFault,
    DVFSLatencyFault,
    DVFSRejectFault,
    FaultPlan,
    MigrationDropFault,
    SpikeFault,
    StuckAtFault,
)
from repro.obs.events import RunEventLog

UNITS = ("intreg", "fpreg")


def make(plan, n_cores=4, seed=0, event_log=None):
    return FaultInjector(
        plan, n_cores=n_cores, units=UNITS, seed=seed, event_log=event_log
    )


def temps(base=60.0, n_cores=4):
    return np.full((n_cores, len(UNITS)), float(base))


class TestSensorFaults:
    def test_input_never_mutated(self):
        inj = make(FaultPlan(faults=(CalibrationStepFault(offset_c=-4.0),)))
        t = temps()
        before = t.copy()
        inj.apply_sensor_faults(0.0, t)
        assert np.array_equal(t, before)

    def test_calibration_step_masks_channels(self):
        inj = make(
            FaultPlan(faults=(CalibrationStepFault(core=1, unit="fpreg",
                                                   offset_c=-4.0),))
        )
        out = inj.apply_sensor_faults(0.0, temps(60.0))
        assert out[1, 1] == 56.0
        assert out[0, 0] == 60.0 and out[1, 0] == 60.0
        assert inj.sensor_faulted_samples == 1

    def test_drift_grows_from_window_start(self):
        inj = make(
            FaultPlan(faults=(DriftFault(core=0, unit="intreg",
                                         start_s=0.1, rate_c_per_s=10.0),))
        )
        out = inj.apply_sensor_faults(0.05, temps(60.0))
        assert out[0, 0] == 60.0  # window closed
        out = inj.apply_sensor_faults(0.3, temps(60.0))
        assert out[0, 0] == pytest.approx(60.0 + 10.0 * 0.2)

    def test_stuck_at_fixed_value(self):
        inj = make(
            FaultPlan(faults=(StuckAtFault(core=0, unit="intreg",
                                           start_s=0.1, value_c=70.0),))
        )
        inj.apply_sensor_faults(0.0, temps(95.0))
        out = inj.apply_sensor_faults(0.2, temps(95.0))
        assert out[0, 0] == 70.0
        assert out[0, 1] == 95.0

    def test_stuck_at_latches_last_delivered_reading(self):
        inj = make(
            FaultPlan(faults=(StuckAtFault(core=0, unit="intreg",
                                           start_s=0.1),))
        )
        inj.apply_sensor_faults(0.0, temps(61.5))  # last pre-window reading
        out = inj.apply_sensor_faults(0.2, temps(80.0))
        assert out[0, 0] == 61.5
        out = inj.apply_sensor_faults(0.3, temps(90.0))
        assert out[0, 0] == 61.5

    def test_stuck_at_latch_on_first_read(self):
        inj = make(
            FaultPlan(faults=(StuckAtFault(core=0, unit="intreg",
                                           start_s=0.0),))
        )
        out = inj.apply_sensor_faults(0.0, temps(62.0))
        assert out[0, 0] == 62.0
        out = inj.apply_sensor_faults(0.1, temps(88.0))
        assert out[0, 0] == 62.0

    def test_dropout_last_good_repeats_delivery(self):
        inj = make(
            FaultPlan(faults=(DropoutFault(core=2, start_s=0.1,
                                           mode="last-good"),))
        )
        inj.apply_sensor_faults(0.05, temps(63.0))
        out = inj.apply_sensor_faults(0.2, temps(75.0))
        assert out[2, 0] == 63.0 and out[2, 1] == 63.0
        assert out[0, 0] == 75.0

    def test_dropout_nan_mode(self):
        inj = make(
            FaultPlan(faults=(DropoutFault(core=1, unit="fpreg",
                                           mode="nan"),))
        )
        out = inj.apply_sensor_faults(0.0, temps(70.0))
        assert np.isnan(out[1, 1])
        assert out[1, 0] == 70.0

    def test_dropout_first_read_without_history_passes_through(self):
        inj = make(FaultPlan(faults=(DropoutFault(mode="last-good"),)))
        out = inj.apply_sensor_faults(0.0, temps(70.0))
        assert np.array_equal(out, temps(70.0))
        # Regression: the untouched first read must not count as a
        # faulted sample — only samples actually altered are counted.
        assert inj.sensor_faulted_samples == 0

    def test_dropout_counts_only_altered_samples(self):
        """Once history exists, every repeated (altered) sample counts;
        the pass-through first read never does."""
        inj = make(
            FaultPlan(faults=(DropoutFault(core=1, mode="last-good"),))
        )
        inj.apply_sensor_faults(0.0, temps(64.0))  # first read: unaltered
        assert inj.sensor_faulted_samples == 0
        inj.apply_sensor_faults(0.1, temps(90.0))  # both units repeated
        assert inj.sensor_faulted_samples == 2

    def test_spike_deterministic_per_seed(self):
        plan = FaultPlan(faults=(SpikeFault(magnitude_c=12.0, prob=0.2),))
        runs = []
        for _ in range(2):
            inj = make(plan, seed=11)
            runs.append(
                [inj.apply_sensor_faults(i * 1e-3, temps(60.0))
                 for i in range(200)]
            )
        assert all(np.array_equal(a, b) for a, b in zip(*runs))
        total = sum(
            int((arr != 60.0).sum()) for arr in runs[0]
        )
        assert total > 0  # some spikes landed over 200 steps at p=0.2

    def test_overlapping_faults_apply_in_plan_order(self):
        # drift then stuck-at: the stuck value wins on the shared channel.
        inj = make(
            FaultPlan(
                faults=(
                    DriftFault(core=0, unit="intreg", rate_c_per_s=100.0),
                    StuckAtFault(core=0, unit="intreg", value_c=50.0),
                )
            )
        )
        out = inj.apply_sensor_faults(0.5, temps(60.0))
        assert out[0, 0] == 50.0

    def test_activation_edge_emits_one_event(self):
        log = RunEventLog()
        inj = make(
            FaultPlan(faults=(CalibrationStepFault(start_s=0.1, end_s=0.3),)),
            event_log=log,
        )
        for i in range(50):
            inj.apply_sensor_faults(i * 0.01, temps(60.0))
        assert len(log.of_type("fault.sensor")) == 1
        assert log.of_type("fault.sensor")[0].time_s == pytest.approx(0.1)


class TestEventLogNonPerturbation:
    def test_log_never_changes_injection(self):
        plan = FaultPlan(
            faults=(
                SpikeFault(prob=0.1, magnitude_c=8.0),
                DropoutFault(prob=0.3, mode="last-good"),
            )
        )
        bare = make(plan, seed=3)
        logged = make(plan, seed=3, event_log=RunEventLog())
        for i in range(300):
            a = bare.apply_sensor_faults(i * 1e-3, temps(60.0 + i * 0.01))
            b = logged.apply_sensor_faults(i * 1e-3, temps(60.0 + i * 0.01))
            assert np.array_equal(a, b, equal_nan=True)


class TestDVFSFaults:
    def test_reject_always(self):
        inj = make(FaultPlan(faults=(DVFSRejectFault(),)))
        allow, extra = inj.dvfs_request(0.0, 0, 0.8, 1.0)
        assert not allow and extra == 0.0
        assert inj.dvfs_rejected == 1

    def test_reject_targets_one_core(self):
        inj = make(FaultPlan(faults=(DVFSRejectFault(core=2),)))
        assert inj.dvfs_request(0.0, 0, 0.8, 1.0) == (True, 0.0)
        assert inj.dvfs_request(0.0, 2, 0.8, 1.0)[0] is False

    def test_reject_outside_window_allows(self):
        inj = make(
            FaultPlan(faults=(DVFSRejectFault(start_s=0.1, end_s=0.2),))
        )
        assert inj.dvfs_request(0.05, 0, 0.8, 1.0) == (True, 0.0)
        assert inj.dvfs_request(0.15, 0, 0.8, 1.0)[0] is False

    def test_latency_extends_accepted_transitions(self):
        inj = make(FaultPlan(faults=(DVFSLatencyFault(extra_penalty_s=5e-5),)))
        allow, extra = inj.dvfs_request(0.0, 1, 0.8, 1.0)
        assert allow and extra == pytest.approx(5e-5)
        assert inj.dvfs_delayed == 1

    def test_reject_swallows_latency_penalty(self):
        inj = make(
            FaultPlan(
                faults=(
                    DVFSRejectFault(),
                    DVFSLatencyFault(extra_penalty_s=5e-5),
                )
            )
        )
        allow, extra = inj.dvfs_request(0.0, 0, 0.8, 1.0)
        assert not allow and extra == 0.0
        assert inj.dvfs_rejected == 1 and inj.dvfs_delayed == 0

    def test_stochastic_reject_deterministic_per_seed(self):
        plan = FaultPlan(faults=(DVFSRejectFault(prob=0.5),))
        outcomes = []
        for _ in range(2):
            inj = make(plan, seed=17)
            outcomes.append(
                [inj.dvfs_request(i * 1e-3, 0, 0.8, 1.0)[0]
                 for i in range(100)]
            )
        assert outcomes[0] == outcomes[1]
        assert 0 < sum(outcomes[0]) < 100  # both branches taken

    def test_gate_closure_binds_core(self):
        inj = make(FaultPlan(faults=(DVFSRejectFault(core=3),)))
        gate = inj.dvfs_gate_for(3)
        assert gate(0.0, 0.8, 1.0)[0] is False
        assert inj.dvfs_gate_for(0)(0.0, 0.8, 1.0)[0] is True


class TestMigrationFaults:
    def test_drop_always(self):
        log = RunEventLog()
        inj = make(FaultPlan(faults=(MigrationDropFault(),)), event_log=log)
        assert inj.migration_request(0.0, [1, 0, 2, 3]) is False
        assert inj.migrations_dropped == 1
        assert log.of_type("fault.migration")[0].data["assignment"] == [1, 0, 2, 3]

    def test_drop_outside_window_delivers(self):
        inj = make(
            FaultPlan(faults=(MigrationDropFault(start_s=0.5, end_s=0.6),))
        )
        assert inj.migration_request(0.1, [1, 0, 2, 3]) is True
        assert inj.migrations_dropped == 0

    def test_stochastic_drop_deterministic(self):
        plan = FaultPlan(faults=(MigrationDropFault(prob=0.5),))
        outcomes = []
        for _ in range(2):
            inj = make(plan, seed=23)
            outcomes.append(
                [inj.migration_request(i * 0.01, [1, 0, 2, 3])
                 for i in range(60)]
            )
        assert outcomes[0] == outcomes[1]
        assert 0 < sum(outcomes[0]) < 60


class TestStreamIndependence:
    def test_editing_one_fault_leaves_other_draws_unchanged(self):
        """Per-fault streams are keyed by plan index, not shared."""
        spike = SpikeFault(prob=0.1, magnitude_c=8.0)
        base_plan = FaultPlan(faults=(spike, MigrationDropFault(prob=0.5)))
        edited_plan = FaultPlan(
            # Same index-1 fault, different index-0 parameters.
            faults=(SpikeFault(prob=0.9, magnitude_c=2.0),
                    MigrationDropFault(prob=0.5))
        )
        a = make(base_plan, seed=5)
        b = make(edited_plan, seed=5)
        drops_a = [a.migration_request(i * 0.01, [0, 1, 2, 3]) for i in range(50)]
        drops_b = [b.migration_request(i * 0.01, [0, 1, 2, 3]) for i in range(50)]
        assert drops_a == drops_b


class TestValidationAndCounts:
    def test_bad_target_rejected_at_construction(self):
        with pytest.raises(ValueError):
            make(FaultPlan(faults=(StuckAtFault(core=9),)), n_cores=4)

    def test_summary_counts(self):
        inj = make(
            FaultPlan(
                faults=(CalibrationStepFault(), DVFSRejectFault(),
                        MigrationDropFault())
            )
        )
        inj.apply_sensor_faults(0.0, temps())
        inj.dvfs_request(0.0, 0, 0.8, 1.0)
        inj.migration_request(0.0, [1, 0, 2, 3])
        assert inj.summary_counts() == {
            "sensor_faulted_samples": 8,  # 4 cores x 2 units
            "dvfs_rejected": 1,
            "dvfs_delayed": 0,
            "migrations_dropped": 1,
        }
