"""Tests for the typed fault models and the FaultPlan spec format."""

import math

import pytest

from repro.faults.models import (
    ACTUATOR_FAULT_TYPES,
    FAULT_REGISTRY,
    SENSOR_FAULT_TYPES,
    UNBOUNDED,
    CalibrationStepFault,
    DriftFault,
    DropoutFault,
    DVFSLatencyFault,
    DVFSRejectFault,
    FaultPlan,
    FaultSummary,
    MigrationDropFault,
    SpikeFault,
    StuckAtFault,
)


class TestRegistry:
    def test_every_model_registered_by_kind(self):
        for cls in SENSOR_FAULT_TYPES + ACTUATOR_FAULT_TYPES:
            assert FAULT_REGISTRY[cls.kind] is cls

    def test_kinds_are_unique(self):
        assert len(FAULT_REGISTRY) == len(
            SENSOR_FAULT_TYPES + ACTUATOR_FAULT_TYPES
        )


class TestValidation:
    def test_window_must_be_nonempty(self):
        with pytest.raises(ValueError):
            DriftFault(start_s=0.5, end_s=0.5)
        with pytest.raises(ValueError):
            DriftFault(start_s=0.5, end_s=0.1)
        with pytest.raises(ValueError):
            DriftFault(start_s=-1.0)

    def test_prob_bounds(self):
        with pytest.raises(ValueError):
            SpikeFault(prob=1.5)
        with pytest.raises(ValueError):
            DVFSRejectFault(prob=-0.1)

    def test_negative_core_rejected(self):
        with pytest.raises(ValueError):
            StuckAtFault(core=-1)

    def test_dropout_mode_checked(self):
        with pytest.raises(ValueError):
            DropoutFault(mode="zero")

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            DVFSLatencyFault(extra_penalty_s=-1e-6)


class TestWindows:
    def test_half_open_window(self):
        f = DriftFault(start_s=0.1, end_s=0.2)
        assert not f.active(0.099)
        assert f.active(0.1)
        assert f.active(0.199)
        assert not f.active(0.2)

    def test_unbounded_window(self):
        f = CalibrationStepFault(start_s=0.0)
        assert f.end_s == UNBOUNDED
        assert f.active(1e9)


class TestStochasticFlag:
    def test_always_stochastic(self):
        assert SpikeFault().stochastic

    def test_stochastic_only_below_certainty(self):
        assert DropoutFault(prob=0.5).stochastic
        assert not DropoutFault(prob=1.0).stochastic
        assert DVFSRejectFault(prob=0.5).stochastic
        assert not DVFSRejectFault(prob=1.0).stochastic
        assert MigrationDropFault(prob=0.3).stochastic
        assert not MigrationDropFault().stochastic

    def test_deterministic_models(self):
        assert not StuckAtFault().stochastic
        assert not DriftFault().stochastic
        assert not CalibrationStepFault().stochastic
        assert not DVFSLatencyFault().stochastic


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.sensor_faults == ()
        assert plan.actuator_faults == ()

    def test_partition_preserves_plan_order(self):
        a = DriftFault(core=0, unit="intreg")
        b = DVFSRejectFault()
        c = SpikeFault()
        plan = FaultPlan(faults=(a, b, c))
        assert plan.sensor_faults == (a, c)
        assert plan.actuator_faults == (b,)

    def test_plan_is_hashable(self):
        plan = FaultPlan(faults=(DriftFault(), MigrationDropFault()))
        assert hash(plan) == hash(
            FaultPlan(faults=(DriftFault(), MigrationDropFault()))
        )

    def test_unknown_fault_type_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(faults=("not-a-fault",))

    def test_validate_targets(self):
        plan = FaultPlan(faults=(StuckAtFault(core=4),))
        plan.validate_targets(8, ("intreg", "fpreg"))
        with pytest.raises(ValueError):
            plan.validate_targets(4, ("intreg", "fpreg"))
        bad_unit = FaultPlan(faults=(DriftFault(unit="l2"),))
        with pytest.raises(ValueError):
            bad_unit.validate_targets(4, ("intreg", "fpreg"))


class TestSpecRoundTrip:
    PLAN = FaultPlan(
        name="round-trip",
        faults=(
            StuckAtFault(core=0, unit="intreg", start_s=0.1, end_s=0.5,
                         value_c=70.0),
            DropoutFault(core=1, start_s=0.0, end_s=0.2, prob=0.4,
                         mode="nan"),
            DriftFault(start_s=0.05, rate_c_per_s=3.0),  # unbounded end
            SpikeFault(magnitude_c=-12.0, prob=0.02),
            CalibrationStepFault(offset_c=-4.0),
            DVFSRejectFault(core=2, prob=0.75),
            DVFSLatencyFault(extra_penalty_s=55e-6),
            MigrationDropFault(start_s=0.01, end_s=0.02),
        ),
    )

    def test_round_trip_identity(self):
        assert FaultPlan.from_spec(self.PLAN.to_spec()) == self.PLAN

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(self.PLAN.to_json())
        assert FaultPlan.from_json_file(path) == self.PLAN

    def test_unbounded_end_serialises_as_string(self):
        spec = self.PLAN.to_spec()
        drift = next(e for e in spec["faults"] if e["kind"] == "drift")
        assert drift["end_s"] == "inf"
        restored = FaultPlan.from_spec(spec)
        assert restored.faults[2].end_s == math.inf

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_spec({"faults": [{"kind": "meltdown"}]})

    def test_bad_field_rejected(self):
        with pytest.raises(ValueError, match="bad 'drift' fault spec"):
            FaultPlan.from_spec(
                {"faults": [{"kind": "drift", "bogus_field": 1}]}
            )


class TestFaultSummary:
    def test_total_injected(self):
        s = FaultSummary(
            sensor_faulted_samples=10,
            dvfs_rejected=2,
            dvfs_delayed=3,
            migrations_dropped=1,
            guard_trips=5,
            guard_fallback_s=0.5,
        )
        # Guard activity is a response, not an injection.
        assert s.total_injected == 16
