"""Tests for the sensor-sanity watchdog and blind stop-go fallback."""

import pytest

from repro.faults.guards import GuardConfig, SensorGuardBank

DT = 27.78e-6
UNITS = ("intreg", "fpreg")


def bank(n_cores=2, **cfg):
    return SensorGuardBank(
        n_cores, len(UNITS), DT, GuardConfig(**cfg)
    )


def readings(*core_temps):
    return [
        {"intreg": float(a), "fpreg": float(b)} for a, b in core_temps
    ]


class TestGuardConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GuardConfig(stuck_steps=1)
        with pytest.raises(ValueError):
            GuardConfig(min_plausible_c=50.0, max_plausible_c=50.0)
        with pytest.raises(ValueError):
            GuardConfig(max_step_c=0.0)
        with pytest.raises(ValueError):
            GuardConfig(recovery_steps=0)
        with pytest.raises(ValueError):
            GuardConfig(fallback_period_s=0.0)
        with pytest.raises(ValueError):
            GuardConfig(fallback_duty=0.0)
        with pytest.raises(ValueError):
            GuardConfig(fallback_duty=1.1)

    def test_hashable_for_cache_key(self):
        assert hash(GuardConfig()) == hash(GuardConfig())


class TestWatchdog:
    def test_sane_readings_never_trip(self):
        g = bank()
        for i in range(100):
            t = 60.0 + 0.01 * i
            assert g.observe(i * DT, readings((t, t + 1), (t, t - 1))) == []
        assert g.trips == 0

    def test_nan_trips_immediately(self):
        g = bank()
        assert g.observe(0.0, readings((float("nan"), 60.0), (60.0, 60.0))) == [
            (0, "trip")
        ]
        assert g.in_fallback(0) and not g.in_fallback(1)

    def test_out_of_band_trips(self):
        g = bank()
        assert g.observe(0.0, readings((200.0, 60.0), (60.0, 60.0))) == [
            (0, "trip")
        ]
        g2 = bank()
        assert g2.observe(0.0, readings((-20.0, 60.0), (60.0, 60.0))) == [
            (0, "trip")
        ]

    def test_implausible_jump_trips(self):
        g = bank(max_step_c=15.0)
        assert g.observe(0.0, readings((60.0, 60.0), (60.0, 60.0))) == []
        assert g.observe(DT, readings((60.0, 60.0), (90.0, 60.0))) == [
            (1, "trip")
        ]

    def test_first_sample_cannot_jump(self):
        g = bank(max_step_c=15.0)
        # No previous sample: a hot-but-plausible first reading is fine.
        assert g.observe(0.0, readings((120.0, 60.0), (60.0, 60.0))) == []

    def test_stuck_streak_trips(self):
        g = bank(stuck_steps=5)
        trans = []
        for i in range(6):
            trans += g.observe(i * DT, readings((61.0, 60.0 + 0.01 * i),
                                                (60.0 + 0.02 * i, 60.0 + 0.01 * i)))
        assert trans == [(0, "trip")]

    def test_wandering_channel_resets_stuck_streak(self):
        g = bank(stuck_steps=5)
        for i in range(50):
            # Alternate by one quantization grid: never stuck.
            t = 61.0 + (i % 2)
            assert g.observe(i * DT, readings((t, 60.0 + 0.01 * i),
                                              (t, 60.0 + 0.01 * i))) == []

    def test_recovery_after_sane_streak(self):
        g = bank(recovery_steps=3)
        g.observe(0.0, readings((float("nan"), 60.0), (60.0, 60.0)))
        assert g.in_fallback(0)
        trans = []
        for i in range(1, 5):
            trans += g.observe(i * DT, readings((60.0 + 0.01 * i, 60.0),
                                                (60.0, 60.0)))
        assert trans == [(0, "clear")]
        assert not g.in_fallback(0)
        assert g.clears == 1

    def test_suspect_reading_resets_recovery_streak(self):
        g = bank(recovery_steps=3)
        g.observe(0.0, readings((float("nan"), 60.0), (60.0, 60.0)))
        g.observe(DT, readings((60.0, 60.0), (60.0, 60.0)))
        g.observe(2 * DT, readings((float("nan"), 60.0), (60.0, 60.0)))
        for i in range(3, 5):
            g.observe(i * DT, readings((60.0 + 0.01 * i, 60.0), (60.0, 60.0)))
        assert g.in_fallback(0)  # streak restarted, not yet recovered

    def test_shape_mismatch_rejected(self):
        g = bank()
        with pytest.raises(ValueError):
            g.observe(0.0, [{"intreg": 60.0}, {"intreg": 60.0}])


class TestFallbackOverride:
    def test_no_override_while_trusted(self):
        g = bank()
        g.observe(0.0, readings((60.0, 60.0), (60.0, 60.0)))
        assert g.override(0, 0.0) is None

    def test_blind_duty_cycle_phased_from_trip(self):
        period, duty = 30e-3, 0.5
        g = bank(fallback_period_s=period, fallback_duty=duty)
        trip_t = 0.004
        g.observe(trip_t, readings((float("nan"), 60.0), (60.0, 60.0)))
        # Run phase, then gated phase, repeating with the period.
        assert g.override(0, trip_t) == 1.0
        assert g.override(0, trip_t + 0.4 * period) == 1.0
        assert g.override(0, trip_t + 0.6 * period) == 0.0
        assert g.override(0, trip_t + 1.4 * period) == 1.0
        assert g.override(0, trip_t + 1.6 * period) == 0.0
        # The untripped core is never overridden.
        assert g.override(1, trip_t) is None

    def test_fallback_accounting(self):
        g = bank(recovery_steps=1000)
        g.observe(0.0, readings((float("nan"), 60.0), (60.0, 60.0)))
        for i in range(1, 11):
            g.observe(i * DT, readings((60.0 + 0.01 * i, 60.0), (60.0, 60.0)))
        assert g.fallback_steps == 10
        assert g.fallback_s == pytest.approx(10 * DT)
        assert g.trips == 1
