"""End-to-end invariance and determinism guarantees of fault injection.

The load-bearing contracts:

* an **empty** fault plan leaves a run bit-identical to one with no plan
  at all (the engine must not even construct an injector);
* a **faulted** run is deterministic — same config, same result — and
  unchanged by attaching an event log;
* the fault plan and guard config **participate in the result-cache
  key**, so a cached no-fault result can never be served for a faulted
  configuration (or vice versa).
"""

from dataclasses import replace

import pytest

from repro.core.taxonomy import spec_by_key
from repro.faults.guards import GuardConfig
from repro.faults.models import (
    CalibrationStepFault,
    DriftFault,
    DVFSRejectFault,
    FaultPlan,
    MigrationDropFault,
    SpikeFault,
    StuckAtFault,
)
from repro.obs.events import RunEventLog
from repro.sim.engine import SimulationConfig, run_workload
from repro.sim.runner import RunPoint, config_hash
from repro.sim.workloads import get_workload

DURATION = 0.012

FAULTY_PLAN = FaultPlan(
    name="invariance-mix",
    faults=(
        DriftFault(core=0, unit="intreg", start_s=0.2 * DURATION,
                   rate_c_per_s=100.0),
        SpikeFault(prob=0.01, magnitude_c=10.0),
        DVFSRejectFault(prob=0.5),
        MigrationDropFault(prob=0.5),
    ),
)


@pytest.fixture(scope="module")
def workload():
    return get_workload("workload7")


@pytest.fixture(scope="module")
def spec():
    return spec_by_key("distributed-dvfs-sensor")


def comparable(result):
    """Every RunResult field except the observability attachments."""
    return replace(result, series=None, events=None)


class TestNoFaultInvariance:
    def test_empty_plan_bit_identical_to_no_plan(self, workload, spec):
        plain = run_workload(workload, spec, SimulationConfig(duration_s=DURATION))
        empty = run_workload(
            workload,
            spec,
            SimulationConfig(duration_s=DURATION, fault_plan=FaultPlan()),
        )
        assert comparable(empty) == comparable(plain)

    def test_no_plan_leaves_fault_summary_unset(self, workload, spec):
        result = run_workload(
            workload, spec, SimulationConfig(duration_s=DURATION)
        )
        assert result.faults is None

    def test_empty_plan_leaves_fault_summary_unset(self, workload, spec):
        result = run_workload(
            workload,
            spec,
            SimulationConfig(duration_s=DURATION, fault_plan=FaultPlan()),
        )
        assert result.faults is None


class TestFaultedDeterminism:
    @pytest.fixture(scope="class")
    def faulted_config(self):
        return SimulationConfig(duration_s=DURATION, fault_plan=FAULTY_PLAN)

    def test_faulted_run_repeats_bit_identically(
        self, workload, spec, faulted_config
    ):
        a = run_workload(workload, spec, faulted_config)
        b = run_workload(workload, spec, faulted_config)
        assert comparable(a) == comparable(b)
        assert a.faults == b.faults

    def test_faults_actually_changed_the_run(
        self, workload, spec, faulted_config
    ):
        plain = run_workload(
            workload, spec, SimulationConfig(duration_s=DURATION)
        )
        faulted = run_workload(workload, spec, faulted_config)
        assert faulted.faults is not None
        assert faulted.faults.total_injected > 0
        assert faulted.bips != plain.bips

    def test_event_capture_does_not_perturb_faulted_run(
        self, workload, spec, faulted_config
    ):
        bare = run_workload(workload, spec, faulted_config)
        log = RunEventLog()
        logged = run_workload(workload, spec, faulted_config, event_log=log)
        assert comparable(logged) == comparable(bare)
        assert logged.faults == bare.faults
        assert len(log.of_type("fault.sensor")) > 0

    def test_guard_only_config_attaches_summary(self, workload, spec):
        result = run_workload(
            workload,
            spec,
            SimulationConfig(duration_s=DURATION, guard=GuardConfig()),
        )
        # No faults injected, but guard accounting is live (and silent on
        # healthy sensors).
        assert result.faults is not None
        assert result.faults.total_injected == 0
        assert result.faults.guard_trips == 0

    def test_guard_engages_on_stuck_cool_sensor(self, workload, spec):
        plan = FaultPlan(
            faults=(StuckAtFault(core=0, unit="intreg",
                                 start_s=0.2 * DURATION, value_c=70.0),
                    CalibrationStepFault(core=0, unit="fpreg",
                                         start_s=0.2 * DURATION,
                                         offset_c=0.001),),
        )
        guarded = run_workload(
            workload,
            spec,
            SimulationConfig(
                duration_s=DURATION,
                fault_plan=plan,
                guard=GuardConfig(stuck_steps=60, recovery_steps=36),
            ),
        )
        assert guarded.faults.guard_trips > 0
        assert guarded.faults.guard_fallback_s > 0.0


class TestCacheKeyParticipation:
    def test_fault_plan_changes_config_hash(self, workload, spec):
        base = SimulationConfig(duration_s=DURATION)
        faulted = replace(base, fault_plan=FAULTY_PLAN)
        assert config_hash(RunPoint(workload, spec, base)) != config_hash(
            RunPoint(workload, spec, faulted)
        )

    def test_guard_changes_config_hash(self, workload, spec):
        base = SimulationConfig(duration_s=DURATION)
        guarded = replace(base, guard=GuardConfig())
        assert config_hash(RunPoint(workload, spec, base)) != config_hash(
            RunPoint(workload, spec, guarded)
        )

    def test_distinct_plans_hash_distinctly(self, workload, spec):
        a = replace(
            SimulationConfig(duration_s=DURATION),
            fault_plan=FaultPlan(faults=(DriftFault(rate_c_per_s=1.0),)),
        )
        b = replace(
            SimulationConfig(duration_s=DURATION),
            fault_plan=FaultPlan(faults=(DriftFault(rate_c_per_s=2.0),)),
        )
        assert config_hash(RunPoint(workload, spec, a)) != config_hash(
            RunPoint(workload, spec, b)
        )

    def test_unbounded_window_is_hashable_and_canonical(self, workload, spec):
        # end_s=inf must survive canonical JSON for the cache key.
        cfg = replace(
            SimulationConfig(duration_s=DURATION),
            fault_plan=FaultPlan(faults=(CalibrationStepFault(),)),
        )
        assert isinstance(config_hash(RunPoint(workload, spec, cfg)), str)
