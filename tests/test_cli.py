"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "workload7" in out
        assert "distributed-dvfs-sensor" in out
        assert "gzip" in out
        assert "<- baseline" in out


class TestRun:
    def test_run_policy(self, capsys):
        rc = main(
            ["run", "-w", "workload7", "-p", "distributed-dvfs-none",
             "-d", "0.01"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "BIPS" in out
        assert "workload7" in out

    def test_run_unthrottled(self, capsys):
        assert main(["run", "-w", "workload1", "-p", "none", "-d", "0.005"]) == 0
        assert "unthrottled" in capsys.readouterr().out

    def test_run_with_seed(self, capsys):
        main(["run", "-d", "0.005", "--seed", "7"])
        first = capsys.readouterr().out
        main(["run", "-d", "0.005", "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "-w", "workload99", "-d", "0.005"])

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError):
            main(["run", "-p", "overclock", "-d", "0.005"])


class TestCompare:
    def test_compare_and_save(self, capsys, tmp_path):
        out_file = tmp_path / "cmp.json"
        rc = main(
            ["compare", "-w", "workload1", "-d", "0.005", "-o", str(out_file)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "All 12 policies" in out
        assert "vs baseline" in out
        payload = json.loads(out_file.read_text())
        assert len(payload["results"]) == 12


class TestTrace:
    def test_trace_generation(self, capsys, tmp_path):
        out_file = tmp_path / "mcf_trace"
        rc = main(["trace", "mcf", "-o", str(out_file), "-d", "0.005"])
        assert rc == 0
        assert (tmp_path / "mcf_trace.npz").exists()
        assert "samples" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "doom", "-o", "/tmp/x"])


class TestExperiment:
    def test_experiment_with_duration(self, capsys):
        rc = main(["experiment", "table5", "-d", "0.01"])
        assert rc == 0
        assert "Table 5" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])


class TestObservability:
    def test_events_out_counts_match_result(self, capsys, tmp_path):
        """The acceptance path: an events-enabled run writes parseable
        JSONL whose per-type counts equal the RunResult counters."""
        from repro.obs.events import read_jsonl
        from repro.sim.engine import SimulationConfig, run_workload
        from repro.sim.workloads import get_workload
        from repro.core.taxonomy import spec_by_key

        events_file = tmp_path / "e.jsonl"
        rc = main(
            ["--no-cache", "run", "-p", "dvfs-dist-none", "-d", "0.02",
             "--events-out", str(events_file), "--profile"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "events:" in out
        assert "engine sections:" in out

        records = read_jsonl(events_file)
        assert records, "event log must not be empty"
        counts = {}
        for record in records:
            assert {"t", "type", "core"} <= set(record)
            counts[record["type"]] = counts.get(record["type"], 0) + 1
        reference = run_workload(
            get_workload("workload7"),
            spec_by_key("distributed-dvfs-none"),
            SimulationConfig(duration_s=0.02),
        )
        assert counts.get("dvfs-transition", 0) == reference.dvfs_transitions
        assert counts.get("migration", 0) == reference.migrations
        assert counts.get("stopgo-trip", 0) == reference.stopgo_trips
        assert counts.get("prochot-trip", 0) == reference.prochot_events

    def test_policy_key_alias_accepted(self, capsys):
        rc = main(["--no-cache", "run", "-p", "dist-dvfs-none", "-d", "0.005"])
        assert rc == 0
        assert "Dist. DVFS" in capsys.readouterr().out

    def test_profile_subcommand(self, capsys):
        rc = main(
            ["profile", "-w", "workload1", "-d", "0.005",
             "-p", "none", "global-stop-go-none"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "unthrottled:" in out
        assert "global-stop-go-none:" in out
        assert "thermal-step" in out

    def test_profile_output_canonical_golden(self, capsys):
        """Golden shape of the profile table: canonical ENGINE_SECTIONS
        order, every section present (os-tick even when it never fired),
        and a percent-of-total on every section row."""
        from repro.obs.profiler import ENGINE_SECTIONS

        rc = main(["profile", "-w", "workload1", "-d", "0.005", "-p", "none"])
        assert rc == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("  ")]
        section_lines = lines[: len(ENGINE_SECTIONS)]
        assert [line.split()[0] for line in section_lines] == list(
            ENGINE_SECTIONS
        )
        for line in section_lines:
            assert line.rstrip().endswith("%")
            assert " ms " in line
        # 0.005 s never reaches the 10 ms OS tick: the row still renders.
        os_tick = next(line for line in section_lines if "os-tick" in line)
        assert "0.00 ms" in os_tick
        assert lines[len(ENGINE_SECTIONS)].split()[0] == "total"

    def test_run_profile_table_matches_profile_subcommand_shape(self, capsys):
        from repro.obs.profiler import ENGINE_SECTIONS

        rc = main(
            ["--no-cache", "run", "-w", "workload1", "-p", "none",
             "-d", "0.005", "--profile"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        start = out.index("engine sections:")
        lines = [
            line for line in out[start:].splitlines() if line.startswith("  ")
        ]
        assert [line.split()[0] for line in lines[: len(ENGINE_SECTIONS)]] == (
            list(ENGINE_SECTIONS)
        )

    def test_log_level_flag(self, capsys):
        rc = main(
            ["--no-cache", "--log-level", "debug", "run", "-d", "0.005"]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "repro.sim.engine" in err
        assert "run start" in err

    def test_default_log_level_is_quiet(self, capsys):
        rc = main(["--no-cache", "run", "-d", "0.005"])
        assert rc == 0
        assert "repro.sim.engine" not in capsys.readouterr().err


class TestTelemetryAndReport:
    def _write_bundle(self, tmp_path, name="run", extra=()):
        prefix = str(tmp_path / name)
        rc = main(
            ["--no-cache", "run", "-w", "workload1",
             "-p", "distributed-dvfs-none", "-d", "0.02",
             "--sample-period", "1e-3", "--telemetry-out", prefix,
             "--events-out", str(tmp_path / f"{name}.raw-events.jsonl"),
             *extra]
        )
        assert rc == 0
        return prefix

    def test_run_telemetry_out_writes_bundle(self, capsys, tmp_path):
        import os

        prefix = self._write_bundle(tmp_path)
        out = capsys.readouterr().out
        assert "telemetry: 21 samples" in out
        assert "telemetry bundle" in out
        for suffix in (".result.json", ".telemetry.jsonl", ".prom",
                       ".events.jsonl"):
            assert os.path.exists(prefix + suffix), suffix

    def test_report_ascii(self, capsys, tmp_path):
        prefix = self._write_bundle(tmp_path)
        capsys.readouterr()
        assert main(["report", prefix]) == 0
        out = capsys.readouterr().out
        assert "run dashboard" in out
        assert "T0 (C)" in out
        assert "f0" in out

    def test_report_html(self, capsys, tmp_path):
        import xml.etree.ElementTree as ET

        prefix = self._write_bundle(tmp_path)
        html_file = tmp_path / "dash.html"
        assert main(["report", prefix, "--html", str(html_file)]) == 0
        root = ET.parse(html_file).getroot()
        ns = {"svg": "http://www.w3.org/2000/svg"}
        assert len(root.findall(".//svg:svg", ns)) >= 8

    def test_report_diff_flags_faulted_run(self, capsys, tmp_path):
        spec = tmp_path / "fault.json"
        spec.write_text(
            '{"faults": [{"kind": "stuck-at", "core": 0, "value_c": 60.0}]}'
        )
        prefix_a = self._write_bundle(tmp_path, "a")
        prefix_b = self._write_bundle(
            tmp_path, "b", extra=["--fault-spec", str(spec)]
        )
        capsys.readouterr()
        assert main(["report", "--diff", prefix_a, prefix_b]) == 0
        out = capsys.readouterr().out
        assert "run diff" in out
        assert "<<" in out
        assert "metric(s) differ" in out

    def test_report_diff_identical_runs_clean(self, capsys, tmp_path):
        prefix_a = self._write_bundle(tmp_path, "a")
        prefix_b = self._write_bundle(tmp_path, "b")
        capsys.readouterr()
        assert main(["report", "--diff", prefix_a, prefix_b]) == 0
        assert "no metric deviations" in capsys.readouterr().out

    def test_report_without_prefix_errors(self, capsys):
        assert main(["report"]) == 2
        assert "bundle prefix" in capsys.readouterr().err

    def test_trace_out_requires_profile(self, capsys, tmp_path):
        rc = main(
            ["--no-cache", "run", "-d", "0.005",
             "--trace-out", str(tmp_path / "t.json")]
        )
        assert rc == 2
        assert "--profile" in capsys.readouterr().err

    def test_run_trace_out_writes_perfetto_loadable_json(self, tmp_path):
        import json as json_mod

        trace_file = tmp_path / "engine.trace.json"
        rc = main(
            ["--no-cache", "run", "-w", "workload1", "-p", "none",
             "-d", "0.005", "--profile", "--trace-out", str(trace_file)]
        )
        assert rc == 0
        payload = json_mod.loads(trace_file.read_text())
        assert payload["traceEvents"]
        assert {e["ph"] for e in payload["traceEvents"]} <= {"X", "M"}

    def test_compare_trace_out(self, tmp_path):
        import json as json_mod

        trace_file = tmp_path / "runner.trace.json"
        rc = main(
            ["--no-cache", "compare", "-w", "workload1", "-d", "0.005",
             "--trace-out", str(trace_file)]
        )
        assert rc == 0
        payload = json_mod.loads(trace_file.read_text())
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 12  # one per simulated policy point
