"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "workload7" in out
        assert "distributed-dvfs-sensor" in out
        assert "gzip" in out
        assert "<- baseline" in out


class TestRun:
    def test_run_policy(self, capsys):
        rc = main(
            ["run", "-w", "workload7", "-p", "distributed-dvfs-none",
             "-d", "0.01"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "BIPS" in out
        assert "workload7" in out

    def test_run_unthrottled(self, capsys):
        assert main(["run", "-w", "workload1", "-p", "none", "-d", "0.005"]) == 0
        assert "unthrottled" in capsys.readouterr().out

    def test_run_with_seed(self, capsys):
        main(["run", "-d", "0.005", "--seed", "7"])
        first = capsys.readouterr().out
        main(["run", "-d", "0.005", "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "-w", "workload99", "-d", "0.005"])

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError):
            main(["run", "-p", "overclock", "-d", "0.005"])


class TestCompare:
    def test_compare_and_save(self, capsys, tmp_path):
        out_file = tmp_path / "cmp.json"
        rc = main(
            ["compare", "-w", "workload1", "-d", "0.005", "-o", str(out_file)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "All 12 policies" in out
        assert "vs baseline" in out
        payload = json.loads(out_file.read_text())
        assert len(payload["results"]) == 12


class TestTrace:
    def test_trace_generation(self, capsys, tmp_path):
        out_file = tmp_path / "mcf_trace"
        rc = main(["trace", "mcf", "-o", str(out_file), "-d", "0.005"])
        assert rc == 0
        assert (tmp_path / "mcf_trace.npz").exists()
        assert "samples" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "doom", "-o", "/tmp/x"])


class TestExperiment:
    def test_experiment_with_duration(self, capsys):
        rc = main(["experiment", "table5", "-d", "0.01"])
        assert rc == 0
        assert "Table 5" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])


class TestObservability:
    def test_events_out_counts_match_result(self, capsys, tmp_path):
        """The acceptance path: an events-enabled run writes parseable
        JSONL whose per-type counts equal the RunResult counters."""
        from repro.obs.events import read_jsonl
        from repro.sim.engine import SimulationConfig, run_workload
        from repro.sim.workloads import get_workload
        from repro.core.taxonomy import spec_by_key

        events_file = tmp_path / "e.jsonl"
        rc = main(
            ["--no-cache", "run", "-p", "dvfs-dist-none", "-d", "0.02",
             "--events-out", str(events_file), "--profile"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "events:" in out
        assert "engine sections:" in out

        records = read_jsonl(events_file)
        assert records, "event log must not be empty"
        counts = {}
        for record in records:
            assert {"t", "type", "core"} <= set(record)
            counts[record["type"]] = counts.get(record["type"], 0) + 1
        reference = run_workload(
            get_workload("workload7"),
            spec_by_key("distributed-dvfs-none"),
            SimulationConfig(duration_s=0.02),
        )
        assert counts.get("dvfs-transition", 0) == reference.dvfs_transitions
        assert counts.get("migration", 0) == reference.migrations
        assert counts.get("stopgo-trip", 0) == reference.stopgo_trips
        assert counts.get("prochot-trip", 0) == reference.prochot_events

    def test_policy_key_alias_accepted(self, capsys):
        rc = main(["--no-cache", "run", "-p", "dist-dvfs-none", "-d", "0.005"])
        assert rc == 0
        assert "Dist. DVFS" in capsys.readouterr().out

    def test_profile_subcommand(self, capsys):
        rc = main(
            ["profile", "-w", "workload1", "-d", "0.005",
             "-p", "none", "global-stop-go-none"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "unthrottled:" in out
        assert "global-stop-go-none:" in out
        assert "thermal-step" in out

    def test_log_level_flag(self, capsys):
        rc = main(
            ["--no-cache", "--log-level", "debug", "run", "-d", "0.005"]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "repro.sim.engine" in err
        assert "run start" in err

    def test_default_log_level_is_quiet(self, capsys):
        rc = main(["--no-cache", "run", "-d", "0.005"])
        assert rc == 0
        assert "repro.sim.engine" not in capsys.readouterr().err
