"""Cross-cutting property-based tests (hypothesis).

Module-level invariants live next to their modules; the properties here
span subsystems: arbitrary floorplans through the RC builder and solver,
arbitrary temperature histories through the PI controller and policies,
arbitrary migration permutations through the scheduler.
"""

import dataclasses
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.pi import DiscretePIController, design_paper_controller
from repro.core.migration import figure4_assignment
from repro.core.stopgo import StopGoPolicy
from repro.core.taxonomy import ALL_POLICY_SPECS, BASELINE_SPEC
from repro.sim.engine import SimulationConfig
from repro.sim.runner import RunPoint, config_hash
from repro.sim.workloads import ALL_WORKLOADS
from repro.thermal.floorplan import Block, Floorplan
from repro.thermal.package import ThermalPackage
from repro.thermal.rc_network import build_rc_network

DT = 100_000 / 3.6e9


@st.composite
def random_grid_floorplans(draw):
    nx = draw(st.integers(min_value=1, max_value=3))
    ny = draw(st.integers(min_value=1, max_value=3))
    widths = [draw(st.floats(min_value=0.4, max_value=4.0)) for _ in range(nx)]
    heights = [draw(st.floats(min_value=0.4, max_value=4.0)) for _ in range(ny)]
    blocks, y = [], 0.0
    for r, h in enumerate(heights):
        x = 0.0
        for c, w in enumerate(widths):
            blocks.append(Block(f"b{r}_{c}", x, y, w, h))
            x += w
        y += h
    return Floorplan(blocks)


@settings(max_examples=25, deadline=None)
@given(random_grid_floorplans())
def test_rc_network_physics_for_arbitrary_floorplans(floorplan):
    """Any valid floorplan yields a physical network: symmetric G, zero
    row sums except the ambient tie, positive capacitances, and a steady
    state at ambient under zero power."""
    net = build_rc_network(floorplan, ThermalPackage())
    g = net.conductance
    np.testing.assert_allclose(g, g.T, atol=1e-12)
    sums = g.sum(axis=1)
    np.testing.assert_allclose(sums[:-1], 0.0, atol=1e-9)
    assert sums[-1] == pytest.approx(net.ambient_conductance)
    assert np.all(net.capacitance > 0)
    temps = np.linalg.solve(g, net.input_vector(np.zeros(net.n_blocks)))
    np.testing.assert_allclose(temps, net.ambient_c, atol=1e-7)


@settings(max_examples=25, deadline=None)
@given(
    random_grid_floorplans(),
    st.integers(min_value=0, max_value=8),
    st.floats(min_value=0.1, max_value=20.0),
)
def test_heat_rises_where_injected(floorplan, block_seed, watts):
    """Injecting power into any single block makes it the hottest block."""
    net = build_rc_network(floorplan, ThermalPackage())
    target = block_seed % net.n_blocks
    p = np.zeros(net.n_blocks)
    p[target] = watts
    temps = np.linalg.solve(net.conductance, net.input_vector(p))
    assert int(np.argmax(temps[: net.n_blocks])) == target


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-20.0, max_value=150.0, allow_nan=False),
        min_size=1,
        max_size=200,
    )
)
def test_pi_output_monotone_under_clipping(history):
    """For any temperature history, outputs stay clipped and the
    controller remains responsive afterwards (no hidden windup): after a
    long cold spell it returns to full speed within a bounded number of
    steps."""
    c = DiscretePIController(design_paper_controller(DT), setpoint=82.2)
    for t in history:
        out = c.step(t)
        assert 0.2 <= out <= 1.0
    steps = 0
    while c.step(40.0) < 1.0:
        steps += 1
        assert steps < 500


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.floats(min_value=40.0, max_value=120.0, allow_nan=False),
        min_size=4,
        max_size=4,
    ),
    st.lists(
        st.floats(min_value=40.0, max_value=120.0, allow_nan=False),
        min_size=4,
        max_size=4,
    ),
)
def test_stopgo_scales_are_binary(int_temps, fp_temps):
    policy = StopGoPolicy(4)
    readings = [
        {"intreg": i, "fpreg": f} for i, f in zip(int_temps, fp_temps)
    ]
    for step in range(5):
        scales = policy.scales(step * DT, readings)
        assert all(s in (0.0, 1.0) for s in scales)


@settings(max_examples=40, deadline=None)
@given(
    st.permutations(list(range(4))),
    st.lists(
        st.tuples(
            st.floats(min_value=60, max_value=85),
            st.floats(min_value=60, max_value=85),
        ),
        min_size=4,
        max_size=4,
    ),
    st.integers(min_value=0, max_value=2 ** 31),
)
def test_figure4_always_produces_permutation(assignment, temps, seed):
    """The greedy matcher returns a permutation of the input pids for any
    readings and any (deterministic) intensity function."""
    readings = [{"intreg": a, "fpreg": b} for a, b in temps]

    def intensity(pid, core, unit):
        return ((pid * 2654435761 + core * 40503 + seed) % 1000) / 1000.0

    result = figure4_assignment(list(assignment), readings, intensity)
    assert sorted(result) == sorted(assignment)


# -- result-cache config hash -------------------------------------------------

#: Scalar SimulationConfig fields with value strategies that always pass
#: __post_init__ validation and differ from the defaults' types sanely.
_HASH_FIELD_STRATEGIES = {
    "duration_s": st.floats(min_value=1e-3, max_value=2.0, allow_nan=False),
    "threshold_c": st.floats(min_value=50.0, max_value=120.0, allow_nan=False),
    "seed": st.integers(min_value=0, max_value=2 ** 48),
    "trace_duration_s": st.floats(min_value=1e-3, max_value=1.0, allow_nan=False),
    "migration_period_s": st.floats(min_value=1e-3, max_value=0.1, allow_nan=False),
    "sensor_noise_std_c": st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    "sensor_quantization_c": st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    "sensor_offset_c": st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
    "hardware_trip": st.booleans(),
    "power_scale": st.floats(min_value=0.1, max_value=2.0, allow_nan=False),
    "record_series": st.booleans(),
}


@st.composite
def config_overrides(draw):
    names = draw(
        st.lists(
            st.sampled_from(sorted(_HASH_FIELD_STRATEGIES)),
            min_size=0,
            max_size=4,
            unique=True,
        )
    )
    return {name: draw(_HASH_FIELD_STRATEGIES[name]) for name in names}


@settings(max_examples=40, deadline=None)
@given(config_overrides(), st.integers(min_value=0, max_value=11))
def test_equal_points_hash_equal(overrides, workload_idx):
    """Two independently built but equal points share a hash."""
    workload = ALL_WORKLOADS[workload_idx]
    a = RunPoint(workload, BASELINE_SPEC, SimulationConfig(**overrides))
    b = RunPoint(workload, BASELINE_SPEC, SimulationConfig(**overrides))
    assert config_hash(a, "v") == config_hash(b, "v")


@settings(max_examples=40, deadline=None)
@given(
    st.sampled_from(sorted(_HASH_FIELD_STRATEGIES)),
    st.data(),
)
def test_any_single_field_change_changes_hash(field_name, data):
    """Perturbing any one configuration field perturbs the hash."""
    base = SimulationConfig()
    value = data.draw(_HASH_FIELD_STRATEGIES[field_name])
    changed = dataclasses.replace(base, **{field_name: value})
    if changed == base:  # drew the default value; nothing changed
        return
    point = RunPoint(ALL_WORKLOADS[0], BASELINE_SPEC, base)
    mutated = RunPoint(ALL_WORKLOADS[0], BASELINE_SPEC, changed)
    assert config_hash(point, "v") != config_hash(mutated, "v")


def test_workload_and_policy_and_version_all_enter_the_hash():
    cfg = SimulationConfig()
    base = config_hash(RunPoint(ALL_WORKLOADS[0], BASELINE_SPEC, cfg), "v")
    assert base != config_hash(RunPoint(ALL_WORKLOADS[1], BASELINE_SPEC, cfg), "v")
    assert base != config_hash(RunPoint(ALL_WORKLOADS[0], ALL_POLICY_SPECS[1], cfg), "v")
    assert base != config_hash(RunPoint(ALL_WORKLOADS[0], None, cfg), "v")
    assert base != config_hash(RunPoint(ALL_WORKLOADS[0], BASELINE_SPEC, cfg), "v2")


def test_config_hash_stable_across_processes():
    """The hash is content-derived: a fresh interpreter (fresh
    PYTHONHASHSEED) computes the identical digest."""
    script = (
        "from repro.sim.runner import RunPoint, config_hash\n"
        "from repro.sim.engine import SimulationConfig\n"
        "from repro.sim.workloads import ALL_WORKLOADS\n"
        "from repro.core.taxonomy import BASELINE_SPEC\n"
        "cfg = SimulationConfig(duration_s=0.123, threshold_c=88.5, seed=42)\n"
        "print(config_hash(RunPoint(ALL_WORKLOADS[2], BASELINE_SPEC, cfg), 'v'))\n"
    )
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "12345"
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    cfg = SimulationConfig(duration_s=0.123, threshold_c=88.5, seed=42)
    here = config_hash(RunPoint(ALL_WORKLOADS[2], BASELINE_SPEC, cfg), "v")
    assert out.stdout.strip() == here
