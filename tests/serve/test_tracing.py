"""End-to-end distributed tracing through a live serve process.

A traced submission must come back as ONE connected trace — client
span, server request root, queue wait, execution, per-point and
engine-section spans — retrievable from ``GET /jobs/<id>/trace``.
Also pins the client's stale-connection retry accounting (the
satellite fix: per-attempt latencies used to be lost on retry).
"""

from __future__ import annotations

import http.client

import pytest

from repro.obs.tracing import (
    KIND_CLIENT,
    KIND_REQUEST,
    render_waterfall,
    spans_from_payload,
    validate_trace,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import start_in_thread

from tests.serve.test_server import QUICK_BODY, quick_config

SWEEP_BODY = {
    "workload": "workload7",
    "policy": "distributed-dvfs-none",
    "config": {"duration_s": 0.002},
    "sweep": {"field": "threshold_c", "values": [80.0, 90.0]},
}


@pytest.fixture
def server(tmp_path):
    handle = start_in_thread(quick_config(tmp_path, workers=2))
    yield handle
    handle.stop()


class TestEndToEndTrace:
    def test_traced_run_yields_one_connected_trace(self, server):
        with ServeClient(server.url, trace=True) as client:
            payload = client.run(SWEEP_BODY)
            assert payload["state"] == "done"
            assert payload["trace_id"] == client.last_trace.trace_id
            doc = client.trace(payload["id"])

        spans = spans_from_payload(doc)
        assert doc["trace_id"] == payload["trace_id"]
        # The server-side set alone is a valid trace rooted at the
        # request span (its parent — the client span — is remote).
        assert validate_trace(spans, root_kind=KIND_REQUEST) == []
        kinds = {s.kind for s in spans}
        assert {"request", "queue", "execute", "point", "section"} <= kinds
        assert {s.trace_id for s in spans} == {payload["trace_id"]}

        # Stitched with the client-side span, the client becomes the root.
        client_spans = [
            s for s in client.recorder.spans() if s.kind == KIND_CLIENT
        ]
        run_span = next(
            s for s in client_spans if s.name == "POST /run"
        )
        merged = spans + [run_span]
        roots = [
            s for s in merged
            if s.parent_id not in {x.span_id for x in merged}
        ]
        assert roots == [run_span]

        # Stage attributes survived the journey.
        by_kind = {s.kind: s for s in spans}
        assert "queue_depth" in by_kind["queue"].attrs
        assert by_kind["execute"].attrs["attempts"] == 1
        assert by_kind["execute"].attrs["n_points"] == 2
        points = [s for s in spans if s.kind == "point"]
        assert len(points) == 2

        # And the merged trace renders as a waterfall.
        out = render_waterfall(merged)
        assert "POST /run" in out
        assert f"{len(merged)} spans" in out

    def test_untraced_job_404s_on_trace(self, server):
        with ServeClient(server.url) as client:
            payload = client.run(QUICK_BODY)
            with pytest.raises(ServeError) as excinfo:
                client.trace(payload["id"])
            assert excinfo.value.status == 404
            assert "trace_id" not in payload

    def test_malformed_traceparent_served_untraced(self, server):
        """A bad header is dropped per W3C guidance, never an error."""
        host, port = server.url.split("//")[1].split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            conn.request(
                "POST", "/run", body=b"{}",
                headers={
                    "Content-Type": "application/json",
                    "traceparent": "00-not-a-real-header-01",
                },
            )
            response = conn.getresponse()
            import json

            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 200
        assert payload["state"] == "done"
        assert "trace_id" not in payload

    def test_cache_hits_cross_tracing_modes(self, server):
        """A traced resubmit of an untraced body is fully cache-served."""
        with ServeClient(server.url) as plain:
            cold = plain.run(SWEEP_BODY)
            assert cold["cache_hits"] == 0
        with ServeClient(server.url, trace=True) as traced:
            warm = traced.run(SWEEP_BODY)
        assert warm["cache_hits"] == 2
        assert warm["points"] == cold["points"]
        hit_spans = [
            s for s in spans_from_payload(traced.trace(warm["id"]))
            if s.attrs.get("cache") == "hit"
        ]
        assert len(hit_spans) == 2


class _FailingConnection:
    """Fake stale keep-alive connection: dies on first use."""

    def __init__(self):
        self.closed = False

    def request(self, *args, **kwargs):
        raise ConnectionResetError("stale keep-alive connection")

    def close(self):
        self.closed = True


class TestClientRetryAccounting:
    def test_retry_exposes_both_attempt_latencies(self, server):
        """The satellite fix: a retried request keeps BOTH timings."""
        with ServeClient(server.url) as client:
            stale = _FailingConnection()
            client._conn = stale
            health = client.healthz()
            assert health["status"] == "ok"
            assert stale.closed
            assert client.last_attempts == 2
            assert len(client.last_attempt_latencies_s) == 2
            assert all(t > 0.0 for t in client.last_attempt_latencies_s)

    def test_single_attempt_on_healthy_connection(self, server):
        with ServeClient(server.url) as client:
            client.healthz()
            client.healthz()  # keep-alive reuse
            assert client.last_attempts == 1
            assert len(client.last_attempt_latencies_s) == 1

    def test_both_attempts_failing_raises_with_two_timings(self):
        client = ServeClient("http://127.0.0.1:1")  # nothing listens
        client._connect = _FailingConnection  # every reconnect is dead
        with pytest.raises(ConnectionResetError):
            client.healthz()
        assert client.last_attempts == 2
        assert len(client.last_attempt_latencies_s) == 2

    def test_traced_retry_annotates_attempts(self, server):
        with ServeClient(server.url, trace=True) as client:
            client._conn = _FailingConnection()
            client.healthz()
            span = client.recorder.spans()[-1]
            assert span.kind == KIND_CLIENT
            assert span.attrs["attempts"] == 2
            assert span.attrs["status"] == 200
