"""End-to-end server tests over real sockets.

Each test starts a private server (ephemeral port) on a background
thread via :func:`start_in_thread` and talks to it with the stdlib
:class:`ServeClient`. Deterministic lifecycle tests (cancel, timeout,
retry) inject a controllable executor instead of running simulations;
the bit-identity tests run real (tiny) simulations through both
backends. The SIGTERM drain test exercises the actual CLI entry point
in a subprocess.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading

import pytest

from repro.obs.exporters import parse_prometheus_text
from repro.serve.bench import run_load
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import JobRequest, job_payload
from repro.serve.server import ServeConfig, start_in_thread
from repro.sim.runner import ParallelRunner

#: Tiny but real simulation request: 72 engine steps per point.
QUICK_BODY = {
    "workload": "workload7",
    "config": {"duration_s": 0.002, "threshold_c": 81.0},
}


def quick_config(tmp_path, **overrides):
    kwargs = dict(
        port=0, workers=2, cache_dir=str(tmp_path / "serve-cache"),
        jobs=1,
    )
    kwargs.update(overrides)
    return ServeConfig(**kwargs)


class ControlledExecutor:
    """Injectable executor: blocks, fails, or dies on command."""

    def __init__(self, die_first_n=0, block=False):
        self.die_first_n = die_first_n
        self.block = block
        self.calls = 0
        self.started = threading.Event()
        self.release = threading.Event()

    def execute(self, request, trace=None):
        self.calls += 1
        self.started.set()
        if self.calls <= self.die_first_n:
            raise BrokenPipeError("worker process vanished")
        if self.block and not self.release.wait(timeout=30):
            raise RuntimeError("test forgot to release the executor")
        return {"n_points": 0, "points": []}, 0, 0, []


@pytest.fixture
def controlled(tmp_path):
    """A 1-worker server around a ControlledExecutor, always drained."""
    handles = []

    def start(**kwargs):
        executor = ControlledExecutor(
            die_first_n=kwargs.pop("die_first_n", 0),
            block=kwargs.pop("block", False),
        )
        config = quick_config(
            tmp_path, workers=kwargs.pop("workers", 1), no_cache=True,
            **kwargs,
        )
        handle = start_in_thread(config, executor=executor)
        handles.append((handle, executor))
        return handle, executor

    yield start
    for handle, executor in handles:
        executor.release.set()
        handle.stop()


class TestEndpoints:
    def test_round_trip_and_warm_cache(self, tmp_path):
        handle = start_in_thread(quick_config(tmp_path))
        try:
            with ServeClient(handle.url) as client:
                health = client.healthz()
                assert health["status"] == "ok"

                job_id = client.submit(QUICK_BODY)
                status = client.wait(job_id, timeout_s=120)
                assert status["state"] == "done"
                assert status["attempts"] == 1
                cold = client.result(job_id)
                assert cold["n_points"] == 1
                assert cold["cache_hits"] == 0

                warm = client.run(QUICK_BODY)
                assert warm["state"] == "done"
                assert warm["cache_hits"] == 1
                assert warm["points"] == cold["points"]
        finally:
            handle.stop()

    def test_errors_and_metrics(self, tmp_path):
        handle = start_in_thread(quick_config(tmp_path))
        try:
            with ServeClient(handle.url) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.submit({"nonsense": 1})
                assert excinfo.value.status == 400

                with pytest.raises(ServeError) as excinfo:
                    client.status("job-999999")
                assert excinfo.value.status == 404

                job_id = client.submit(QUICK_BODY)
                client.wait(job_id, timeout_s=120)
                # Result of an unknown id 404s; done job's result is 200.
                client.result(job_id)

                metrics = parse_prometheus_text(client.metrics_text())
                assert metrics['serve_jobs_total{state="done"}'] >= 1
                assert "serve_queue_depth" in metrics
                assert "serve_jobs_running" in metrics
                assert metrics['serve_requests_total{route="submit"}'] >= 1
                bucket_series = [
                    k for k in metrics
                    if k.startswith("serve_request_seconds_bucket")
                ]
                assert bucket_series, "latency histogram not exported"
        finally:
            handle.stop()

    def test_result_409_while_running(self, controlled):
        handle, executor = controlled(block=True)
        with ServeClient(handle.url) as client:
            job_id = client.submit({})
            assert executor.started.wait(timeout=10)
            with pytest.raises(ServeError) as excinfo:
                client.result(job_id)
            assert excinfo.value.status == 409
            executor.release.set()
            assert client.wait(job_id, timeout_s=10)["state"] == "done"


class TestBitIdentity:
    @pytest.mark.parametrize("backend", ["pool", "fleet"])
    def test_served_equals_direct_runner(self, tmp_path, backend):
        """A served sweep is bit-identical to a direct ParallelRunner run."""
        body = {
            "workload": "workload7",
            "policy": "distributed-dvfs-none",
            "config": {"duration_s": 0.002},
            "sweep": {"field": "threshold_c", "values": [80.0, 90.0]},
            "backend": backend,
        }
        handle = start_in_thread(quick_config(tmp_path))
        try:
            with ServeClient(handle.url) as client:
                served = client.run(body)
        finally:
            handle.stop()
        assert served["state"] == "done"

        request = JobRequest.parse(body)
        runner = ParallelRunner(jobs=1, cache=None, backend=backend)
        direct = job_payload(request, runner.run_points(request.run_points()))
        assert served["n_points"] == direct["n_points"]
        # The payloads went through JSON on the wire; result_to_dict uses
        # shortest-repr floats, so equality here is result bit-identity.
        assert served["points"] == direct["points"]
        assert json.loads(json.dumps(direct["points"])) == direct["points"]


class TestLifecycle:
    def test_timeout_marks_job_and_discards_result(self, controlled):
        handle, executor = controlled(block=True)
        with ServeClient(handle.url) as client:
            job_id = client.submit({"timeout_s": 0.2})
            status = client.wait(job_id, timeout_s=10)
            assert status["state"] == "timeout"
            assert "timed out" in status["error"]
            with pytest.raises(ServeError) as excinfo:
                client.result(job_id)
            assert excinfo.value.status == 409

    def test_cancel_running_job_discards_result(self, controlled):
        handle, executor = controlled(block=True)
        with ServeClient(handle.url) as client:
            job_id = client.submit({})
            assert executor.started.wait(timeout=10)
            ack = client.cancel(job_id)
            assert ack["cancelled"] is True
            executor.release.set()
            status = client.wait(job_id, timeout_s=10)
            assert status["state"] == "cancelled"

    def test_cancel_queued_job_never_executes(self, controlled):
        handle, executor = controlled(block=True)
        with ServeClient(handle.url) as client:
            blocker = client.submit({})
            assert executor.started.wait(timeout=10)
            queued = client.submit({})
            ack = client.cancel(queued)
            assert ack["cancelled"] is True
            assert client.status(queued)["state"] == "cancelled"
            executor.release.set()
            assert client.wait(blocker, timeout_s=10)["state"] == "done"
            # The cancelled job never reached the executor.
            assert executor.calls == 1

    def test_cancel_finished_job_is_a_noop(self, controlled):
        handle, executor = controlled()
        with ServeClient(handle.url) as client:
            job_id = client.submit({})
            client.wait(job_id, timeout_s=10)
            assert client.cancel(job_id)["cancelled"] is False

    def test_retry_on_worker_death(self, controlled):
        handle, executor = controlled(die_first_n=1, retries=2)
        with ServeClient(handle.url) as client:
            job_id = client.submit({})
            status = client.wait(job_id, timeout_s=10)
            assert status["state"] == "done"
            assert status["attempts"] == 2

    def test_worker_death_exhausts_retries(self, controlled):
        handle, executor = controlled(die_first_n=10, retries=1)
        with ServeClient(handle.url) as client:
            job_id = client.submit({})
            status = client.wait(job_id, timeout_s=10)
            assert status["state"] == "failed"
            assert "worker died" in status["error"]
            assert status["attempts"] == 2

    def test_full_queue_returns_503(self, controlled):
        handle, executor = controlled(block=True, queue_size=1)
        with ServeClient(handle.url) as client:
            client.submit({})  # picked up by the single worker
            assert executor.started.wait(timeout=10)
            client.submit({})  # fills the queue
            with pytest.raises(ServeError) as excinfo:
                client.submit({})
            assert excinfo.value.status == 503


class TestLoadGenerator:
    def test_small_campaign_counts_and_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "load-cache"))
        payload = run_load(
            unique=2, warm_requests=6, concurrency=2, serve_workers=2
        )
        assert payload["schema"] == "repro-bench-serve/1"
        assert payload["total_requests"] == 8
        assert payload["cold"]["requests"] == 2
        assert payload["warm"]["requests"] == 6
        assert payload["server_metrics"]["cache_misses_total"] == 2.0
        assert payload["server_metrics"]["cache_hits_total"] == 6.0
        assert payload["warm"]["p50_ms"] > 0


class TestGracefulDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """`repro serve` under SIGTERM finishes in-flight work, exits 0."""
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env["REPRO_CACHE_DIR"] = str(tmp_path / "drain-cache")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--serve-workers", "1"],
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)))),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert line.startswith("serving on http://"), line
            url = line.split()[-1].strip()
            with ServeClient(url) as client:
                job_id = client.submit(QUICK_BODY)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "draining" in out
        assert "drained cleanly" in out
        # The submitted job was allowed to finish before exit: a fresh
        # cache dir only gains entries when the simulation actually ran.
        cache_root = tmp_path / "drain-cache"
        assert any(cache_root.rglob("*.pkl")), (
            "in-flight job was dropped instead of drained"
        )

    def test_submissions_rejected_while_draining(self, tmp_path):
        handle = start_in_thread(quick_config(tmp_path))
        stopper = threading.Thread(target=handle.stop)
        with ServeClient(handle.url) as client:
            client.run(QUICK_BODY)
            stopper.start()
            stopper.join()
            with pytest.raises((ServeError, ConnectionError, OSError)):
                client.submit(QUICK_BODY)
