"""Job-queue and job-store unit tests (no sockets, no simulations)."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.jobs import (
    Job,
    JobQueue,
    JobState,
    JobStore,
    QueueClosedError,
    QueueFullError,
)
from repro.serve.protocol import JobRequest


def make_job(job_id="job-x", priority=0):
    return Job(job_id, JobRequest.parse({"priority": priority}))


def drain(queue):
    """Pop every immediately available job (synchronously)."""

    async def _drain():
        jobs = []
        while len(queue):
            jobs.append(await queue.get())
        return jobs

    return asyncio.run(_drain())


class TestJob:
    def test_lifecycle(self):
        job = make_job()
        assert job.state is JobState.QUEUED and not job.done

        async def finish():
            job.finish(JobState.DONE, payload={"n_points": 0})
            await asyncio.wait_for(job.finished.wait(), timeout=1)

        asyncio.run(finish())
        assert job.done and job.payload == {"n_points": 0}
        # Terminal transitions are one-shot.
        job.finish(JobState.FAILED, error="late")
        assert job.state is JobState.DONE and job.error is None

    def test_status_document(self):
        job = make_job("job-42", priority=7)
        status = job.status()
        assert status["id"] == "job-42"
        assert status["state"] == "queued"
        assert status["request"]["priority"] == 7
        assert "error" not in status
        job.finish(JobState.FAILED, error="boom")
        assert job.status()["error"] == "boom"


class TestJobQueue:
    def test_priority_then_fifo(self):
        queue = JobQueue(maxsize=8)
        low1, low2 = make_job("low1", 0), make_job("low2", 0)
        high = make_job("high", 5)
        for job in (low1, low2, high):
            queue.put(job)
        assert [j.id for j in drain(queue)] == ["high", "low1", "low2"]

    def test_full_queue_rejects(self):
        queue = JobQueue(maxsize=1)
        queue.put(make_job("a"))
        with pytest.raises(QueueFullError):
            queue.put(make_job("b"))

    def test_closed_queue_rejects(self):
        queue = JobQueue(maxsize=4)
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.put(make_job())

    def test_get_returns_none_when_closed_and_drained(self):
        queue = JobQueue(maxsize=4)
        queue.put(make_job("a"))
        queue.close()

        async def run():
            assert (await queue.get()).id == "a"
            assert await queue.get() is None

        asyncio.run(run())

    def test_lazily_cancelled_jobs_are_skipped(self):
        queue = JobQueue(maxsize=4)
        victim, survivor = make_job("victim", 9), make_job("survivor", 0)
        queue.put(victim)
        queue.put(survivor)
        victim.finish(JobState.CANCELLED)
        queue.discard(victim)
        assert len(queue) == 1
        assert [j.id for j in drain(queue)] == ["survivor"]

    def test_get_wakes_on_put(self):
        queue = JobQueue(maxsize=4)

        async def run():
            getter = asyncio.ensure_future(queue.get())
            await asyncio.sleep(0)  # park the getter on a waiter future
            queue.put(make_job("late"))
            return await asyncio.wait_for(getter, timeout=1)

        assert asyncio.run(run()).id == "late"

    def test_close_wakes_all_waiters(self):
        queue = JobQueue(maxsize=4)

        async def run():
            getters = [asyncio.ensure_future(queue.get()) for _ in range(3)]
            await asyncio.sleep(0)
            queue.close()
            return await asyncio.wait_for(
                asyncio.gather(*getters), timeout=1
            )

        assert asyncio.run(run()) == [None, None, None]

    def test_every_queued_job_is_popped_exactly_once(self):
        queue = JobQueue(maxsize=64)
        jobs = [make_job(f"job-{i}", priority=i % 3) for i in range(20)]
        for job in jobs:
            queue.put(job)
        popped = drain(queue)
        assert sorted(j.id for j in popped) == sorted(j.id for j in jobs)
        assert len(queue) == 0

    def test_bad_maxsize(self):
        with pytest.raises(ValueError):
            JobQueue(maxsize=0)


class TestJobStore:
    def test_ids_are_unique_and_resolvable(self):
        store = JobStore()
        a = store.create(JobRequest.parse({}))
        b = store.create(JobRequest.parse({}))
        assert a.id != b.id
        assert store.get(a.id) is a and store.get(b.id) is b
        assert store.get("job-999999") is None

    def test_finished_jobs_are_pruned_live_kept(self):
        store = JobStore(max_finished=2)
        finished = [store.create(JobRequest.parse({})) for _ in range(4)]
        live = store.create(JobRequest.parse({}))
        for job in finished:
            job.finish(JobState.DONE)
        store.create(JobRequest.parse({})).finish(JobState.DONE)
        # Creation triggers pruning; the two oldest finished are gone.
        store.create(JobRequest.parse({}))
        assert store.get(finished[0].id) is None
        assert store.get(live.id) is live

    def test_states_census(self):
        store = JobStore()
        store.create(JobRequest.parse({}))
        store.create(JobRequest.parse({})).finish(JobState.DONE)
        assert store.states() == {"queued": 1, "done": 1}
