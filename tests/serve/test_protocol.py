"""Wire-schema tests: request validation and payload serialisation."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.core.taxonomy import spec_by_key
from repro.serve.protocol import (
    CONFIG_FIELDS,
    SWEEP_FIELDS,
    JobRequest,
    ProtocolError,
    job_payload,
)
from repro.sim.engine import SimulationConfig, run_workload
from repro.sim.report import result_to_dict
from repro.sim.workloads import get_workload


class TestParse:
    def test_defaults(self):
        request = JobRequest.parse({})
        assert request.workloads == ("workload7",)
        assert request.policy is None
        assert request.config_overrides == ()
        assert request.sweep_values == ()
        assert request.backend is None
        assert request.priority == 0
        assert request.n_points == 1

    def test_full_request(self):
        request = JobRequest.parse(
            {
                "workloads": ["workload1", "workload7"],
                "policy": "distributed-dvfs-none",
                "config": {"duration_s": 0.002, "threshold_c": 82.0},
                "sweep": {"field": "threshold_c", "values": [80.0, 85.0]},
                "backend": "fleet",
                "priority": 3,
                "timeout_s": 10,
            }
        )
        assert request.workloads == ("workload1", "workload7")
        assert request.policy == "distributed-dvfs-none"
        assert dict(request.config_overrides) == {
            "duration_s": 0.002, "threshold_c": 82.0,
        }
        assert request.sweep_field == "threshold_c"
        assert request.sweep_values == (80.0, 85.0)
        assert request.n_points == 4
        assert request.timeout_s == 10.0

    def test_policy_none_string(self):
        assert JobRequest.parse({"policy": "none"}).policy is None

    def test_policy_canonicalised(self):
        spec = spec_by_key("distributed-dvfs-none")
        # Whatever alias the taxonomy accepts must resolve to the
        # canonical key, so equal requests hash to equal cache keys.
        assert JobRequest.parse({"policy": spec.key}).policy == spec.key

    @pytest.mark.parametrize(
        "body",
        [
            {"nonsense": 1},
            {"workload": "no-such-workload"},
            {"policy": "no-such-policy"},
            {"workloads": []},
            {"workloads": ["workload7"], "workload": "workload7"},
            {"config": {"machine": {}}},
            {"config": {"record_series": True}},
            {"config": {"duration_s": "fast"}},
            {"config": {"hardware_trip": 1}},
            {"sweep": {"field": "threshold_c"}},
            {"sweep": {"field": "fault_plan", "values": [1]}},
            {"sweep": {"field": "threshold_c", "values": []}},
            {"backend": "gpu"},
            {"priority": 1.5},
            {"priority": True},
            {"timeout_s": 0},
            {"timeout_s": -3},
        ],
    )
    def test_rejects(self, body):
        with pytest.raises(ProtocolError):
            JobRequest.parse(body)

    def test_not_a_dict(self):
        with pytest.raises(ProtocolError):
            JobRequest.parse(["not", "a", "dict"])

    def test_sweep_fields_are_config_fields(self):
        assert set(SWEEP_FIELDS) <= set(CONFIG_FIELDS)

    def test_describe_is_json_safe(self):
        request = JobRequest.parse(
            {"sweep": {"field": "seed", "values": [1, 2]}, "priority": 2}
        )
        echo = json.loads(json.dumps(request.describe()))
        assert echo["n_points"] == 2
        assert echo["sweep"] == {"field": "seed", "values": [1, 2]}


class TestRunPoints:
    def test_grid_matches_sweep_order(self):
        """The expanded grid must equal sweep_config_field's, in order."""
        request = JobRequest.parse(
            {
                "workloads": ["workload1", "workload7"],
                "policy": "distributed-dvfs-none",
                "config": {"duration_s": 0.002},
                "sweep": {"field": "threshold_c", "values": [80.0, 90.0]},
            }
        )
        points = request.run_points()
        spec = spec_by_key("distributed-dvfs-none")
        workloads = [get_workload("workload1"), get_workload("workload7")]
        base = SimulationConfig(duration_s=0.002)
        expected = [
            (w.name, replace(base, threshold_c=v))
            for v in (80.0, 90.0)
            for w in workloads
        ]
        assert [(p.workload.name, p.config) for p in points] == expected
        assert all(p.spec is spec for p in points)

    def test_no_sweep_one_point_per_workload(self):
        request = JobRequest.parse({"workloads": ["workload1", "workload7"]})
        points = request.run_points()
        assert [p.workload.name for p in points] == ["workload1", "workload7"]
        assert all(p.spec is None for p in points)

    def test_invalid_config_surfaces_as_protocol_error(self):
        request = JobRequest.parse({"config": {"duration_s": -1.0}})
        with pytest.raises(ProtocolError):
            request.run_points()


class TestJobPayload:
    def test_payload_round_trips_results(self):
        request = JobRequest.parse(
            {"config": {"duration_s": 0.002},
             "sweep": {"field": "seed", "values": [1, 2]}}
        )
        points = request.run_points()
        results = [
            run_workload(p.workload, p.spec, p.config) for p in points
        ]
        payload = job_payload(request, results)
        assert payload["n_points"] == 2
        assert [e["value"] for e in payload["points"]] == [1, 2]
        assert [e["result"] for e in payload["points"]] == [
            result_to_dict(r) for r in results
        ]
        # JSON round trip preserves the serialisation exactly
        # (shortest-repr floats), i.e. payload equality is bit-identity.
        assert json.loads(json.dumps(payload)) == payload
