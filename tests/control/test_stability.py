"""Tests for pole/stability analysis and root-locus sampling."""

import numpy as np
import pytest

from repro.control.stability import (
    is_marginally_stable,
    is_stable,
    root_locus,
    stability_margin_gain,
)
from repro.control.transfer import (
    TransferFunction,
    first_order_plant,
    pi_transfer_function,
)


class TestIsStable:
    def test_stable_continuous(self):
        assert is_stable(first_order_plant(1.0, 0.1))

    def test_unstable_continuous(self):
        g = TransferFunction([1.0], [1.0, -2.0])  # pole at +2
        assert not is_stable(g)

    def test_pi_open_loop_marginal(self):
        g = pi_transfer_function(0.0107, 248.5)
        assert not is_stable(g)
        assert is_marginally_stable(g)

    def test_stable_discrete(self):
        g = TransferFunction([1.0], [1.0, -0.5], domain="z", dt=1.0)
        assert is_stable(g)

    def test_unstable_discrete(self):
        g = TransferFunction([1.0], [1.0, -1.5], domain="z", dt=1.0)
        assert not is_stable(g)

    def test_discrete_integrator_marginal(self):
        g = TransferFunction([1.0], [1.0, -1.0], domain="z", dt=1.0)
        assert is_marginally_stable(g)
        assert not is_stable(g)

    def test_repeated_boundary_pole_not_marginal(self):
        # 1/s^2: double pole at origin -> unstable even marginally.
        g = TransferFunction([1.0], [1.0, 0.0, 0.0])
        assert not is_marginally_stable(g)

    def test_pure_gain_stable(self):
        assert is_stable(TransferFunction([5.0], [1.0]))


class TestPaperDesignStability:
    """The paper's root-locus check: the closed PI+thermal loop is stable."""

    def _open_loop(self):
        # PI controller x first-order thermal plant (tau in ms range).
        controller = pi_transfer_function(0.0107, 248.5)
        plant = first_order_plant(gain=50.0, tau=7e-3)
        return controller * plant

    def test_closed_loop_poles_in_left_half_plane(self):
        closed = self._open_loop().feedback()
        assert np.all(closed.poles().real < 0)

    def test_stable_across_wide_gain_range(self):
        # "these constants can actually deviate significantly" (Sec. 4.1).
        margin = stability_margin_gain(
            self._open_loop(), gains=[0.1, 0.5, 1.0, 5.0, 10.0, 100.0]
        )
        assert margin >= 100.0


class TestRootLocus:
    def test_shape(self):
        ol = pi_transfer_function(1.0, 10.0) * first_order_plant(1.0, 0.1)
        locus = root_locus(ol, gains=np.linspace(0.01, 10, 25))
        assert locus.shape == (25, 2)

    def test_matches_direct_pole_computation(self):
        ol = first_order_plant(2.0, 0.5)
        locus = root_locus(ol, gains=[3.0])
        closed = (ol * 3.0).feedback()
        np.testing.assert_allclose(
            np.sort_complex(locus[0][~np.isnan(locus[0])]),
            np.sort_complex(closed.poles()),
            rtol=1e-9,
        )

    def test_empty_gains_rejected(self):
        with pytest.raises(ValueError):
            root_locus(first_order_plant(1.0, 1.0), gains=[])
