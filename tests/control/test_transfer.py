"""Tests for rational transfer functions."""

import numpy as np
import pytest

from repro.control.transfer import (
    TransferFunction,
    first_order_plant,
    pi_transfer_function,
)


class TestConstruction:
    def test_monic_normalisation(self):
        tf = TransferFunction([2.0], [2.0, 4.0])
        assert tf.den[0] == pytest.approx(1.0)
        assert tf.den[1] == pytest.approx(2.0)
        assert tf.num[0] == pytest.approx(1.0)

    def test_leading_zeros_trimmed(self):
        tf = TransferFunction([0.0, 0.0, 1.0], [0.0, 1.0, 2.0])
        assert tf.num.size == 1
        assert tf.den.size == 2

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValueError):
            TransferFunction([1.0], [0.0])

    def test_discrete_needs_dt(self):
        with pytest.raises(ValueError):
            TransferFunction([1.0], [1.0, 1.0], domain="z")

    def test_bad_domain_rejected(self):
        with pytest.raises(ValueError):
            TransferFunction([1.0], [1.0], domain="w")


class TestEvaluation:
    def test_pointwise(self):
        # G(s) = 1 / (s + 1); G(1) = 0.5
        tf = TransferFunction([1.0], [1.0, 1.0])
        assert tf(1.0) == pytest.approx(0.5)

    def test_dc_gain_continuous(self):
        assert first_order_plant(3.0, 0.5).dc_gain() == pytest.approx(3.0)

    def test_dc_gain_discrete(self):
        tf = TransferFunction([1.0], [1.0, -0.5], domain="z", dt=1.0)
        assert tf.dc_gain() == pytest.approx(2.0)


class TestAlgebra:
    def test_series_composition(self):
        g = first_order_plant(2.0, 1.0)
        h = first_order_plant(3.0, 0.5)
        gh = g * h
        assert gh.dc_gain() == pytest.approx(6.0)
        assert gh(2.0) == pytest.approx(g(2.0) * h(2.0))

    def test_scalar_multiplication(self):
        g = first_order_plant(2.0, 1.0)
        assert (3.0 * g).dc_gain() == pytest.approx(6.0)

    def test_parallel_addition(self):
        g = first_order_plant(2.0, 1.0)
        h = first_order_plant(3.0, 0.5)
        s = g + h
        assert s(1.5) == pytest.approx(g(1.5) + h(1.5))

    def test_unity_feedback_dc(self):
        # G/(1+G) with G dc-gain 9 -> closed dc gain 0.9.
        g = first_order_plant(9.0, 1.0)
        assert g.feedback().dc_gain() == pytest.approx(0.9)

    def test_domain_mixing_rejected(self):
        g = first_order_plant(1.0, 1.0)
        z = TransferFunction([1.0], [1.0, -0.5], domain="z", dt=1.0)
        with pytest.raises(ValueError):
            _ = g * z


class TestPolesZeros:
    def test_first_order_pole(self):
        g = first_order_plant(1.0, 0.5)  # pole at -1/tau = -2
        np.testing.assert_allclose(g.poles(), [-2.0])

    def test_pi_pole_at_origin(self):
        g = pi_transfer_function(0.0107, 248.5)
        np.testing.assert_allclose(g.poles(), [0.0], atol=1e-12)

    def test_pi_zero(self):
        kp, ki = 0.0107, 248.5
        g = pi_transfer_function(kp, ki)
        np.testing.assert_allclose(g.zeros(), [-ki / kp])

    def test_pure_gain_has_no_poles(self):
        g = TransferFunction([5.0], [1.0])
        assert g.poles().size == 0
        assert g.zeros().size == 0

    def test_bad_tau_rejected(self):
        with pytest.raises(ValueError):
            first_order_plant(1.0, 0.0)
