"""Tests for closed-loop step-response analysis."""

import numpy as np
import pytest

from repro.control.analysis import (
    FirstOrderThermalPlant,
    closed_loop_step_response,
    settling_time,
)
from repro.control.pi import design_paper_controller

PAPER_DT = 100_000 / 3.6e9


@pytest.fixture
def design():
    return design_paper_controller(PAPER_DT)


@pytest.fixture
def hot_plant():
    # Equilibrium at full speed: 45 + 55 = 100 C — above the setpoint.
    return FirstOrderThermalPlant(gain=55.0, tau=7e-3, ambient=45.0)


class TestPlant:
    def test_equilibrium_cubic(self, hot_plant):
        assert hot_plant.equilibrium(1.0) == pytest.approx(100.0)
        assert hot_plant.equilibrium(0.5) == pytest.approx(45.0 + 55.0 * 0.125)

    def test_advance_moves_toward_equilibrium(self, hot_plant):
        t1 = hot_plant.advance(45.0, 1.0, 1e-3)
        assert 45.0 < t1 < 100.0

    def test_advance_converges(self, hot_plant):
        t = 45.0
        for _ in range(10_000):
            t = hot_plant.advance(t, 1.0, 1e-4)
        assert t == pytest.approx(100.0, abs=0.01)


class TestStepResponse:
    def test_settles_at_setpoint(self, design, hot_plant):
        resp = closed_loop_step_response(design, hot_plant, 82.2, horizon=0.5)
        assert resp.final_temperature == pytest.approx(82.2, abs=0.5)

    def test_settling_time_finite_and_fast(self, design, hot_plant):
        resp = closed_loop_step_response(design, hot_plant, 82.2, horizon=0.5)
        ts = settling_time(resp, band=0.5)
        assert np.isfinite(ts)
        assert ts < 0.3  # settles well within the horizon

    def test_no_emergency_overshoot(self, design, hot_plant):
        """The controlled response must not blow past the 84.2 C limit."""
        resp = closed_loop_step_response(design, hot_plant, 82.2, horizon=0.5)
        assert resp.max_temperature < 84.2

    def test_cool_plant_runs_full_speed(self, design):
        plant = FirstOrderThermalPlant(gain=20.0, tau=7e-3, ambient=45.0)
        resp = closed_loop_step_response(design, plant, 82.2, horizon=0.2)
        assert np.all(resp.outputs == 1.0)
        assert resp.final_temperature == pytest.approx(65.0, abs=0.5)

    def test_unreachable_setpoint_settles_at_floor(self, design):
        # Even at minimum scale the plant stays above the setpoint; the
        # settling-time helper then measures against the achieved value.
        plant = FirstOrderThermalPlant(gain=400.0, tau=5e-3, ambient=80.0)
        resp = closed_loop_step_response(design, plant, 82.2, horizon=0.3)
        floor_temp = plant.equilibrium(0.2)
        assert resp.final_temperature == pytest.approx(floor_temp, abs=1.0)
        assert np.isfinite(settling_time(resp, band=1.0))

    def test_overshoot_property(self, design, hot_plant):
        resp = closed_loop_step_response(design, hot_plant, 82.2, horizon=0.5)
        assert resp.overshoot == pytest.approx(
            max(0.0, resp.max_temperature - 82.2)
        )
