"""Tests for continuous-to-discrete conversion.

The headline test reproduces the paper's published discrete PI law from
its continuous constants: u[n] = u[n-1] - 0.0107 e[n] + 0.003796 e[n-1]
at the 100,000-cycle / 3.6 GHz sample period.
"""

import numpy as np
import pytest

from repro.control.c2d import c2d, discretize_pi_increments
from repro.control.transfer import (
    TransferFunction,
    first_order_plant,
    pi_transfer_function,
)

PAPER_DT = 100_000 / 3.6e9  # 27.78 us


class TestPaperCoefficients:
    def test_euler_matches_published_law(self):
        b0, b1 = discretize_pi_increments(0.0107, 248.5, PAPER_DT, "euler")
        # Applied law negates: u[n] = u[n-1] - b0 e[n] - b1 e[n-1].
        assert b0 == pytest.approx(0.0107, abs=1e-9)
        assert -b1 == pytest.approx(0.003796, abs=2e-6)

    def test_zoh_matches_euler_for_pi(self):
        eb = discretize_pi_increments(0.0107, 248.5, PAPER_DT, "euler")
        zb = discretize_pi_increments(0.0107, 248.5, PAPER_DT, "zoh")
        np.testing.assert_allclose(eb, zb, rtol=1e-9)

    def test_tustin_close_but_distinct(self):
        eb = discretize_pi_increments(0.0107, 248.5, PAPER_DT, "euler")
        tb = discretize_pi_increments(0.0107, 248.5, PAPER_DT, "tustin")
        # Tustin differs by Ki*Ts/2 in each coefficient.
        assert tb[0] == pytest.approx(eb[0] + 248.5 * PAPER_DT / 2, rel=1e-6)
        assert tb != pytest.approx(eb)


class TestC2dGeneric:
    def test_integrator_pole_maps_to_one(self):
        for method in ("euler", "tustin", "zoh"):
            g = c2d(pi_transfer_function(1.0, 10.0), 0.01, method)
            assert g.domain == "z"
            np.testing.assert_allclose(g.poles(), [1.0], atol=1e-9)

    def test_first_order_zoh_exact_pole(self):
        # ZOH maps a pole at -1/tau to exp(-dt/tau) exactly.
        tau, dt = 0.05, 0.01
        g = c2d(first_order_plant(2.0, tau), dt, "zoh")
        np.testing.assert_allclose(g.poles(), [np.exp(-dt / tau)], rtol=1e-9)

    def test_first_order_zoh_dc_gain_preserved(self):
        g = c2d(first_order_plant(2.0, 0.05), 0.01, "zoh")
        assert g.dc_gain() == pytest.approx(2.0, rel=1e-9)

    def test_first_order_tustin_dc_gain_preserved(self):
        g = c2d(first_order_plant(2.0, 0.05), 0.01, "tustin")
        assert g.dc_gain() == pytest.approx(2.0, rel=1e-9)

    def test_zoh_step_response_matches_continuous(self):
        # Simulate the discrete system's step response and compare with
        # the exact continuous first-order response at the samples.
        gain, tau, dt = 3.0, 0.02, 1e-3
        g = c2d(first_order_plant(gain, tau), dt, "zoh")
        # y[n+1] = -a1 y[n] + b0 u[n+1] + b1 u[n] with monic den [1, a1].
        num = np.concatenate([np.zeros(g.den.size - g.num.size), g.num])
        a1 = g.den[1]
        y, ys = 0.0, []
        prev_u = 1.0  # the step is already applied at sample 0
        for n in range(50):
            u = 1.0
            y = -a1 * y + num[0] * u + num[1] * prev_u
            prev_u = u
            ys.append(y)
        expected = gain * (1.0 - np.exp(-dt * np.arange(1, 51) / tau))
        np.testing.assert_allclose(ys, expected, rtol=1e-6, atol=1e-9)

    def test_requires_continuous_input(self):
        z = TransferFunction([1.0], [1.0, -0.5], domain="z", dt=0.01)
        with pytest.raises(ValueError):
            c2d(z, 0.01)

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            c2d(first_order_plant(1.0, 1.0), 0.0)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            c2d(first_order_plant(1.0, 1.0), 0.01, "bilinear-ish")

    def test_zoh_rejects_improper(self):
        improper = TransferFunction([1.0, 0.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            c2d(improper, 0.01, "zoh")
