"""Tests for the PI design and the discrete runtime controller."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.control.pi import (
    MAX_FREQUENCY_SCALE,
    MIN_FREQUENCY_SCALE,
    PAPER_KI,
    PAPER_KP,
    DiscretePIController,
    design_paper_controller,
    design_pi,
)

PAPER_DT = 100_000 / 3.6e9


@pytest.fixture
def design():
    return design_paper_controller(PAPER_DT)


class TestDesign:
    def test_paper_constants(self):
        assert PAPER_KP == 0.0107
        assert PAPER_KI == 248.5

    def test_design_coefficients(self, design):
        assert design.b0 == pytest.approx(0.0107)
        assert design.b1 == pytest.approx(-0.003797, abs=2e-6)

    def test_transfer_function_roundtrip(self, design):
        tf = design.transfer_function()
        assert tf(1.0) == pytest.approx(PAPER_KP + PAPER_KI)

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            design_pi(1.0, 1.0, 0.0)


class TestControllerBasics:
    def test_starts_at_max(self, design):
        c = DiscretePIController(design, setpoint=82.2)
        assert c.output == MAX_FREQUENCY_SCALE

    def test_cool_core_stays_at_full_speed(self, design):
        c = DiscretePIController(design, setpoint=82.2)
        for _ in range(1000):
            out = c.step(60.0)
        assert out == MAX_FREQUENCY_SCALE

    def test_hot_core_throttles(self, design):
        c = DiscretePIController(design, setpoint=82.2)
        for _ in range(200):
            out = c.step(90.0)
        assert out < MAX_FREQUENCY_SCALE

    def test_saturates_at_minimum(self, design):
        c = DiscretePIController(design, setpoint=82.2)
        for _ in range(5000):
            out = c.step(120.0)
        assert out == MIN_FREQUENCY_SCALE

    def test_bad_limits_rejected(self, design):
        with pytest.raises(ValueError):
            DiscretePIController(design, setpoint=80.0, output_min=0.9, output_max=0.2)

    @given(
        st.lists(
            st.floats(min_value=-50.0, max_value=200.0, allow_nan=False),
            min_size=1,
            max_size=300,
        )
    )
    def test_output_always_clipped(self, temps):
        c = DiscretePIController(design_paper_controller(PAPER_DT), setpoint=82.2)
        for t in temps:
            out = c.step(t)
            assert MIN_FREQUENCY_SCALE <= out <= MAX_FREQUENCY_SCALE


class TestAntiWindup:
    def test_recovery_after_long_saturation(self, design):
        """Clipping prevents hidden integral build-up (Section 4.2)."""
        c = DiscretePIController(design, setpoint=82.2)
        for _ in range(20_000):  # a long, hopeless overheat
            c.step(120.0)
        assert c.output == MIN_FREQUENCY_SCALE
        # Once the condition clears, the controller winds up promptly: the
        # per-step increment at error -37 is about 0.0107*37, so recovery
        # to full speed takes only a couple of steps, not 20,000.
        steps = 0
        while c.step(45.0) < MAX_FREQUENCY_SCALE:
            steps += 1
            assert steps < 50, "controller failed to recover promptly"


class TestConvergence:
    def test_regulates_first_order_plant_to_setpoint(self, design):
        """Closed loop with a thermal-like plant settles at the setpoint."""
        import numpy as np

        setpoint = 82.2
        c = DiscretePIController(design, setpoint=setpoint)
        temp, tau, gain, ambient = 60.0, 7e-3, 55.0, 45.0
        alpha = 1.0 - np.exp(-PAPER_DT / tau)
        for _ in range(60_000):  # ~1.7 s
            scale = c.step(temp)
            target = ambient + gain * scale ** 3
            temp += (target - temp) * alpha
        assert temp == pytest.approx(setpoint, abs=0.3)
        # And the equilibrium scale matches the plant inversion.
        expected_scale = ((setpoint - ambient) / gain) ** (1.0 / 3.0)
        assert c.output == pytest.approx(expected_scale, abs=0.02)


class TestFeedbackWindow:
    def test_average_output_window(self, design):
        c = DiscretePIController(design, setpoint=82.2)
        for _ in range(10):
            c.step(120.0)
        avg_hot = c.average_output
        assert avg_hot < MAX_FREQUENCY_SCALE
        c.reset_window()
        assert c.average_output == c.output  # empty window reports current

    def test_trace_recording(self, design):
        c = DiscretePIController(design, setpoint=82.2, record=True)
        c.step(90.0, time=1.0)
        c.step(91.0, time=2.0)
        assert c.trace.times == [1.0, 2.0]
        assert len(c.trace.outputs) == 2
        assert c.trace.errors[0] == pytest.approx(90.0 - 82.2)

    def test_reset(self, design):
        c = DiscretePIController(design, setpoint=82.2)
        for _ in range(100):
            c.step(100.0)
        c.reset()
        assert c.output == MAX_FREQUENCY_SCALE
        assert c.average_output == MAX_FREQUENCY_SCALE
