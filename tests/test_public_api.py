"""Public-API surface tests.

The README and examples program against ``repro``'s top-level exports;
these tests pin that surface so refactors cannot silently break users.
"""

import importlib
import inspect

import pytest

import repro


class TestTopLevelExports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_surface(self):
        """The exact names the README quickstart uses."""
        for name in (
            "SimulationConfig",
            "run_workload",
            "get_workload",
            "spec_by_key",
            "ALL_POLICY_SPECS",
            "ALL_WORKLOADS",
        ):
            assert name in repro.__all__

    def test_readme_quickstart_executes(self):
        workload = repro.get_workload("workload7")
        spec = repro.spec_by_key("distributed-dvfs-sensor")
        result = repro.run_workload(
            workload, spec, repro.SimulationConfig(duration_s=0.005)
        )
        assert "workload7" in result.summary()


SUBPACKAGES = (
    "repro.util",
    "repro.control",
    "repro.thermal",
    "repro.uarch",
    "repro.osmodel",
    "repro.core",
    "repro.sim",
    "repro.experiments",
)


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_imports_and_documents(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


EXPERIMENT_MODULES = (
    "repro.experiments.table1",
    "repro.experiments.table5",
    "repro.experiments.table6",
    "repro.experiments.table7",
    "repro.experiments.table8",
    "repro.experiments.figure3",
    "repro.experiments.figure5",
    "repro.experiments.figure7",
    "repro.experiments.ablations",
    "repro.experiments.extensions",
)


@pytest.mark.parametrize("module_name", EXPERIMENT_MODULES)
def test_experiment_module_contract(module_name):
    """Every experiment module exposes compute/render/main."""
    module = importlib.import_module(module_name)
    assert callable(getattr(module, "compute", None)) or any(
        callable(getattr(module, n, None))
        for n in ("placement_sensitivity", "threshold_sweep")
    ), module_name
    assert callable(getattr(module, "render", None)), module_name
    assert callable(getattr(module, "main", None)), module_name


def test_public_functions_have_docstrings():
    """Spot-check: every public callable in the core packages is documented."""
    import repro.core.dvfs
    import repro.core.migration
    import repro.core.stopgo
    import repro.sim.engine
    import repro.thermal.model

    for module in (
        repro.core.dvfs,
        repro.core.stopgo,
        repro.core.migration,
        repro.sim.engine,
        repro.thermal.model,
    ):
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if obj.__module__ != module.__name__:
                    continue  # re-exported
                assert obj.__doc__, f"{module.__name__}.{name} lacks a docstring"
